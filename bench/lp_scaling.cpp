// LP scaling bench: factorization x pricing-rule matrix for the revised
// simplex across platform sizes K (ISSUE 3 tentpole, extended by the
// ISSUE 6 kernel overhaul).
//
// For each K the steady-state reduced LP (Sum objective, every cluster
// active) is cold-solved under:
//
//   * dense   — DenseInverse + Dantzig: the historical dense baseline;
//   * sparse  — SparseLu + Dantzig: the pre-overhaul sparse path (the
//               field names below keep their PR-5 meaning so committed
//               baselines stay comparable);
//   * partial — SparseLu + Partial (candidate-list Dantzig);
//   * se      — SparseLu + SteepestEdge (devex): the new default;
//   * auto    — everything defaulted (Auto factorization picks dense
//               below the crossover, Auto pricing picks steepest edge).
//
// All five must agree on the LP objective (asserted, 1e-6 relative).
// Reported per K: best-of-repeats cold seconds, simplex pivots,
// microseconds per pivot, refactorization count, and peak eta-file
// nonzeros; then one warm (capsule) re-solve after a departure event,
// and a batch section solving payoff-re-priced variants through
// lp::BatchSolver (shared column analysis + per-thread arenas) against
// a fresh-solver sequential loop, asserting bit-identical objectives.
//
// Platforms keep a bounded average router degree (connectivity ~ 8/K)
// so the link-row count grows linearly with K, the way real federations
// scale; a constant connectivity would grow m quadratically and the
// dense baseline could not even allocate its inverse at K = 256.
//
// One "JSON {...}" line per K, collected into BENCH_lp_scaling.json at
// the repo root by CI, which gates on sparse-beats-dense and
// steepest-edge-beats-Dantzig at K >= 64. Under DLS_BENCH_SCALE < 1
// (the CI smoke configuration) the K = 256 point is skipped: its dense
// baseline alone takes seconds.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "exp/experiment.hpp"
#include "lp/batch.hpp"
#include "lp/simplex.hpp"
#include "obs/metrics.hpp"
#include "platform/generator.hpp"
#include "support/timer.hpp"

namespace {

dls::platform::Platform make_platform(int k, std::uint64_t seed) {
  dls::platform::GeneratorParams params;
  params.num_clusters = k;
  params.connectivity = std::min(0.4, 8.0 / k);
  params.ensure_connected = true;
  dls::Rng rng(seed + 6151 * static_cast<std::uint64_t>(k));
  return generate_platform(params, rng);
}

struct PathResult {
  double seconds = 0.0;
  int pivots = 0;
  double objective = 0.0;
  int refactors = 0;
  std::size_t eta_peak = 0;
};

PathResult cold_solve(const dls::lp::Model& model, dls::lp::Factorization f,
                      dls::lp::Pricing p, int repeats, bool hypersparse = true) {
  dls::lp::SimplexOptions opt;
  opt.factorization = f;
  opt.pricing = p;
  opt.compute_duals = false;
  opt.hypersparse = hypersparse;
  const dls::lp::SimplexSolver solver(opt);
  PathResult out;
  out.seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    dls::WallTimer timer;
    const dls::lp::Solution sol = solver.solve(model);
    // Best-of-repeats: robust against scheduler/frequency outliers that
    // would otherwise dominate the sub-millisecond points.
    out.seconds = std::min(out.seconds, timer.seconds());
    if (sol.status != dls::lp::SolveStatus::Optimal) {
      std::cerr << "lp_scaling: cold solve not optimal\n";
      std::exit(1);
    }
    out.pivots = sol.iterations;
    out.objective = sol.objective;
    out.refactors = sol.refactorizations;
    out.eta_peak = sol.eta_peak_nnz;
  }
  return out;
}

bool objectives_agree(double a, double b) {
  return std::abs(a - b) <= 1e-6 * std::max(1.0, std::abs(a));
}

double us_per_pivot(const PathResult& r) {
  return r.pivots > 0 ? r.seconds * 1e6 / r.pivots : 0.0;
}

// Hypersparse solve telemetry, read back out of the metrics registry.
// The bench diffs two snapshots around a solve (or a block of repeats)
// to report per-K reach fractions and fallback rates.
struct HyperSnap {
  std::vector<double> bounds;  ///< shared by both reach histograms
  std::vector<std::uint64_t> ftran_buckets, btran_buckets;
  std::uint64_t ftran_count = 0, btran_count = 0;
  std::uint64_t ftran_falls = 0, btran_falls = 0;
};

HyperSnap hyper_snap() {
  HyperSnap out;
  for (const dls::obs::SeriesSnapshot& s : dls::obs::registry().snapshot().series) {
    if (s.name == "dls_lp_ftran_reach_fraction") {
      out.bounds = s.bounds;
      out.ftran_buckets = s.buckets;
      out.ftran_count = s.count;
    } else if (s.name == "dls_lp_btran_reach_fraction") {
      out.btran_buckets = s.buckets;
      out.btran_count = s.count;
    } else if (s.name == "dls_lp_ftran_fallbacks_total") {
      out.ftran_falls = s.counter;
    } else if (s.name == "dls_lp_btran_fallbacks_total") {
      out.btran_falls = s.counter;
    }
  }
  return out;
}

/// Median of the observations accumulated between two snapshots of a
/// reach-fraction histogram, linearly interpolated within its bucket.
double median_reach(const std::vector<double>& bounds,
                    const std::vector<std::uint64_t>& after,
                    const std::vector<std::uint64_t>& before) {
  if (after.empty()) return 0.0;
  std::vector<std::uint64_t> delta(after.size(), 0);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < after.size(); ++i) {
    delta[i] = after[i] - (i < before.size() ? before[i] : 0);
    total += delta[i];
  }
  if (total == 0) return 0.0;
  const double target = static_cast<double>(total) / 2.0;
  double cum = 0.0;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    const double next = cum + static_cast<double>(delta[i]);
    if (next >= target && delta[i] > 0) {
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      // Reach fractions max out at 1.0, so the +Inf bucket is empty and
      // the last finite bound closes the interpolation range.
      const double hi = i < bounds.size() ? bounds[i] : 1.0;
      return lo + (hi - lo) * (target - cum) / static_cast<double>(delta[i]);
    }
    cum = next;
  }
  return 1.0;
}

double fallback_rate(std::uint64_t falls_after, std::uint64_t falls_before,
                     std::uint64_t count_after, std::uint64_t count_before) {
  const std::uint64_t solves = count_after - count_before;
  return solves > 0
             ? static_cast<double>(falls_after - falls_before) / solves
             : 0.0;
}

}  // namespace

int main() {
  using namespace dls;
  const std::uint64_t seed = exp::bench_seed();
  const bool full = exp::bench_scale() >= 1.0;
  // Floored at 3 even in scaled-down CI runs: the gate compares wall
  // clocks, and best-of-one has no outlier protection.
  const int repeats = std::max(3, exp::scaled(3));
  const int batch_models = std::max(4, exp::scaled(16));

  std::cout << "# LP scaling: factorization x pricing matrix, revised simplex\n"
            << "# reduced steady-state model, Sum objective, all clusters active\n";

  std::vector<std::string> json_lines;
  std::vector<int> sizes{16, 32, 64, 128};
  if (full) sizes.push_back(256);
  for (const int k : sizes) {
    const platform::Platform plat = make_platform(k, seed);
    // Half the clusters host applications (with a payoff spread), the
    // other half are idle CPU donors: active applications ship load to
    // them, so the LP is contended and a departure genuinely
    // redistributes capacity instead of leaving the old basis optimal.
    std::vector<double> payoffs(static_cast<std::size_t>(k), 0.0);
    for (int c = 0; c < k; c += 2)
      payoffs[static_cast<std::size_t>(c)] = 1.0 + 0.1 * (c % 5);
    const core::SteadyStateProblem problem(plat, payoffs, core::Objective::Sum);
    core::SteadyStateProblem::ReducedModel reduced = problem.build_reduced();
    const lp::Model& model = reduced.model;

    std::size_t nnz = 0;
    for (int c = 0; c < model.num_constraints(); ++c) nnz += model.row(c).size();

    const PathResult dense = cold_solve(model, lp::Factorization::DenseInverse,
                                        lp::Pricing::Dantzig, repeats);
    const PathResult sparse = cold_solve(model, lp::Factorization::SparseLu,
                                         lp::Pricing::Dantzig, repeats);
    const PathResult partial = cold_solve(model, lp::Factorization::SparseLu,
                                          lp::Pricing::Partial, repeats);
    const HyperSnap h0 = hyper_snap();
    const PathResult se = cold_solve(model, lp::Factorization::SparseLu,
                                     lp::Pricing::SteepestEdge, repeats);
    const HyperSnap h1 = hyper_snap();
    // The knob-off arm: same factorization and pricing, dense sweeps
    // only. Hypersparse solves are bit-identical, so this arm must
    // reproduce the se arm's pivot count and objective exactly.
    const PathResult se_nohyper =
        cold_solve(model, lp::Factorization::SparseLu,
                   lp::Pricing::SteepestEdge, repeats, /*hypersparse=*/false);
    if (se_nohyper.objective != se.objective || se_nohyper.pivots != se.pivots) {
      std::cerr << "lp_scaling: hypersparse arm diverged from dense-pass arm"
                << " at K=" << k << "\n";
      return 1;
    }
    const PathResult autop =
        cold_solve(model, lp::Factorization::Auto, lp::Pricing::Auto, repeats);
    for (const PathResult* r : {&sparse, &partial, &se, &autop}) {
      if (!objectives_agree(dense.objective, r->objective)) {
        std::cerr << "lp_scaling: objectives diverge at K=" << k << ": "
                  << dense.objective << " vs " << r->objective << "\n";
        return 1;
      }
    }

    // Warm chain under the defaults: fill the capsule, then re-solve
    // after a departure (one cluster's payoff drops to zero — the
    // online rescheduler's per-event shape).
    // Solver configured like the online rescheduler's per-event path:
    // no duals, a persistent arena, a live capsule.
    lp::SimplexOptions warm_opt;
    warm_opt.compute_duals = false;
    const lp::SimplexSolver warm_solver(warm_opt);
    lp::SolveArena warm_arena;
    lp::WarmState state;
    (void)warm_solver.solve(model, &state, warm_arena);
    std::vector<double> departed = payoffs;
    departed[static_cast<std::size_t>((k / 2) & ~1)] = 0.0;  // an active cluster
    const core::SteadyStateProblem after = problem.with_payoffs(departed);
    after.update_reduced_payoffs(reduced);
    const HyperSnap hw0 = hyper_snap();
    WallTimer warm_timer;
    const lp::Solution warm = warm_solver.solve(model, &state, warm_arena);
    const double warm_seconds = warm_timer.seconds();
    const HyperSnap hw1 = hyper_snap();
    if (warm.status != lp::SolveStatus::Optimal) {
      std::cerr << "lp_scaling: warm solve not optimal at K=" << k << "\n";
      return 1;
    }

    // Observability overhead: the same cold solve with the metrics
    // registry runtime-enabled (every solve records counters, pivots and
    // a histogram sample) vs runtime-disabled (each write is one relaxed
    // load and a branch). Same binary, same code path — CI gates the
    // ratio at <= 2% for K >= 64. Extra repeats because the gate
    // compares two nearly-identical minima.
    // The cost being measured (a handful of relaxed atomics per solve)
    // is far below per-solve timing noise, so each sample is a *block*
    // of solves timed as one unit — averaging inside the block — and
    // the arms alternate block-by-block so neither systematically runs
    // on a warmer cache. Best-of over rounds on both arms.
    const int block = std::clamp(static_cast<int>(0.05 / se.seconds), 4, 64);
    const int obs_rounds = std::max(5, repeats);
    const auto timed_block = [&](bool enabled) {
      obs::set_enabled(enabled);
      lp::SimplexOptions opt;
      opt.factorization = lp::Factorization::SparseLu;
      opt.pricing = lp::Pricing::SteepestEdge;
      opt.compute_duals = false;
      const lp::SimplexSolver solver(opt);
      lp::SolveArena arena;
      WallTimer timer;
      for (int s = 0; s < block; ++s) {
        if (solver.solve(model, arena).status != lp::SolveStatus::Optimal) {
          std::cerr << "lp_scaling: obs-arm solve not optimal\n";
          std::exit(1);
        }
      }
      return timer.seconds() / block;
    };
    double obs_on_seconds = timed_block(true);   // warmup round, discarded
    double obs_off_seconds = timed_block(false);
    obs_on_seconds = obs_off_seconds = std::numeric_limits<double>::infinity();
    for (int r = 0; r < obs_rounds; ++r) {
      obs_on_seconds = std::min(obs_on_seconds, timed_block(true));
      obs_off_seconds = std::min(obs_off_seconds, timed_block(false));
    }
    obs::set_enabled(true);
    const double obs_overhead =
        obs_off_seconds > 0.0 ? obs_on_seconds / obs_off_seconds : 1.0;

    // Batch section: payoff-re-priced variants of this K's model (same
    // constraint matrix, different costs — the campaign-cell shape).
    // BatchSolver must beat, and bit-match, a fresh-solver loop.
    std::vector<core::SteadyStateProblem::ReducedModel> variants;
    variants.reserve(static_cast<std::size_t>(batch_models));
    for (int v = 0; v < batch_models; ++v) {
      std::vector<double> p = payoffs;
      for (std::size_t c = 0; c < p.size(); c += 2)
        p[c] = 1.0 + 0.07 * static_cast<double>((v + static_cast<int>(c)) % 7);
      variants.push_back(problem.with_payoffs(p).build_reduced());
    }
    std::vector<const lp::Model*> batch_ptrs;
    for (const auto& v : variants) batch_ptrs.push_back(&v.model);

    lp::SimplexOptions batch_opt;
    batch_opt.compute_duals = false;
    std::vector<double> plain_obj;
    WallTimer plain_timer;
    for (const lp::Model* m : batch_ptrs)
      plain_obj.push_back(lp::SimplexSolver(batch_opt).solve(*m).objective);
    const double plain_seconds = plain_timer.seconds();

    lp::BatchSolver batch(batch_opt, exp::bench_jobs());
    WallTimer batch_timer;
    const std::vector<lp::Solution> batched =
        batch.solve_all(std::span<const lp::Model* const>(batch_ptrs));
    const double batch_seconds = batch_timer.seconds();
    for (std::size_t i = 0; i < batched.size(); ++i) {
      if (batched[i].objective != plain_obj[i]) {
        std::cerr << "lp_scaling: batch solve not bit-identical at K=" << k
                  << " model " << i << "\n";
        return 1;
      }
    }
    const lp::BatchSolver::Stats bstats = batch.stats();

    const std::size_t m = static_cast<std::size_t>(model.num_constraints());
    const std::size_t dense_binv_bytes = m * m * sizeof(double);
    const double speedup =
        sparse.seconds > 0.0 ? dense.seconds / sparse.seconds : 0.0;
    const double se_speedup =
        se.seconds > 0.0 ? sparse.seconds / se.seconds : 0.0;
    const double pivot_ratio =
        se.pivots > 0 ? static_cast<double>(sparse.pivots) / se.pivots : 0.0;
    const double batch_speedup =
        batch_seconds > 0.0 ? plain_seconds / batch_seconds : 0.0;
    const double hyper_speedup =
        se.seconds > 0.0 ? se_nohyper.seconds / se.seconds : 0.0;
    const double ftran_reach_median =
        median_reach(h1.bounds, h1.ftran_buckets, h0.ftran_buckets);
    const double btran_reach_median =
        median_reach(h1.bounds, h1.btran_buckets, h0.btran_buckets);
    const double ftran_fallback_rate = fallback_rate(
        h1.ftran_falls, h0.ftran_falls, h1.ftran_count, h0.ftran_count);
    const double btran_fallback_rate = fallback_rate(
        h1.btran_falls, h0.btran_falls, h1.btran_count, h0.btran_count);
    const double warm_fallback_rate = fallback_rate(
        hw1.ftran_falls + hw1.btran_falls, hw0.ftran_falls + hw0.btran_falls,
        hw1.ftran_count + hw1.btran_count, hw0.ftran_count + hw0.btran_count);

    std::cout << "K=" << k << ": m=" << model.num_constraints()
              << " n=" << model.num_variables() << " nnz=" << nnz
              << "\n  cold  dense " << dense.seconds * 1e3 << " ms/"
              << dense.pivots << "p, sparse(dantzig) " << sparse.seconds * 1e3
              << " ms/" << sparse.pivots << "p, partial "
              << partial.seconds * 1e3 << " ms/" << partial.pivots
              << "p, steepest " << se.seconds * 1e3 << " ms/" << se.pivots
              << "p (" << se.refactors << " refac, eta peak " << se.eta_peak
              << "), auto " << autop.seconds * 1e3 << " ms/" << autop.pivots
              << "p\n  se vs dantzig: " << se_speedup << "x time, "
              << pivot_ratio << "x pivots; warm " << warm_seconds * 1e3
              << " ms/" << warm.iterations << "p, capsule "
              << state.memory_bytes() << " B\n  hypersparse: no-hyper "
              << se_nohyper.seconds * 1e3 << " ms (" << hyper_speedup
              << "x), reach median ftran " << ftran_reach_median << " btran "
              << btran_reach_median << ", fallback ftran "
              << ftran_fallback_rate << " btran " << btran_fallback_rate
              << " warm " << warm_fallback_rate << "\n  batch " << batch_models
              << " models: plain " << plain_seconds * 1e3 << " ms, batch "
              << batch_seconds * 1e3 << " ms (" << batch_speedup << "x, "
              << bstats.cache_misses << " structure build(s) for "
              << batch_models << " solves)\n  obs overhead: "
              << obs_on_seconds * 1e3 << " ms on vs " << obs_off_seconds * 1e3
              << " ms off (" << obs_overhead << "x)\n";

    std::ostringstream js;
    js.precision(6);
    js << "{\"bench\":\"lp_scaling\",\"k\":" << k
       << ",\"rows\":" << model.num_constraints()
       << ",\"cols\":" << model.num_variables() << ",\"nnz\":" << nnz
       << ",\"repeats\":" << repeats
       << ",\"dense_cold_seconds\":" << dense.seconds
       << ",\"dense_pivots\":" << dense.pivots
       << ",\"sparse_cold_seconds\":" << sparse.seconds
       << ",\"sparse_pivots\":" << sparse.pivots
       << ",\"sparse_us_per_pivot\":" << us_per_pivot(sparse)
       << ",\"partial_cold_seconds\":" << partial.seconds
       << ",\"partial_pivots\":" << partial.pivots
       << ",\"se_cold_seconds\":" << se.seconds
       << ",\"se_pivots\":" << se.pivots
       << ",\"se_us_per_pivot\":" << us_per_pivot(se)
       << ",\"se_refactorizations\":" << se.refactors
       << ",\"se_eta_peak_nnz\":" << se.eta_peak
       << ",\"se_nohyper_cold_seconds\":" << se_nohyper.seconds
       << ",\"se_nohyper_us_per_pivot\":" << us_per_pivot(se_nohyper)
       << ",\"hyper_speedup_vs_nohyper\":" << hyper_speedup
       << ",\"ftran_reach_median\":" << ftran_reach_median
       << ",\"btran_reach_median\":" << btran_reach_median
       << ",\"ftran_fallback_rate\":" << ftran_fallback_rate
       << ",\"btran_fallback_rate\":" << btran_fallback_rate
       << ",\"warm_fallback_rate\":" << warm_fallback_rate
       << ",\"auto_cold_seconds\":" << autop.seconds
       << ",\"auto_pivots\":" << autop.pivots
       << ",\"speedup\":" << speedup
       << ",\"se_speedup_vs_sparse\":" << se_speedup
       << ",\"se_pivot_ratio\":" << pivot_ratio
       << ",\"objective\":" << sparse.objective
       << ",\"sparse_warm_seconds\":" << warm_seconds
       << ",\"warm_pivots\":" << warm.iterations
       << ",\"warm_used\":" << (warm.warm_used ? "true" : "false")
       << ",\"capsule_bytes\":" << state.memory_bytes()
       << ",\"dense_binv_bytes\":" << dense_binv_bytes
       << ",\"batch_models\":" << batch_models
       << ",\"batch_plain_seconds\":" << plain_seconds
       << ",\"batch_seconds\":" << batch_seconds
       << ",\"batch_speedup\":" << batch_speedup
       << ",\"batch_cache_hits\":" << bstats.cache_hits
       << ",\"batch_cache_builds\":" << bstats.cache_misses
       << ",\"batch_arenas\":" << bstats.arenas
       << ",\"obs_on_seconds\":" << obs_on_seconds
       << ",\"obs_off_seconds\":" << obs_off_seconds
       << ",\"obs_overhead_ratio\":" << obs_overhead << "}";
    json_lines.push_back(js.str());
  }
  for (const std::string& line : json_lines) std::cout << "JSON " << line << "\n";
  return 0;
}
