// LP scaling bench: sparse-LU vs dense-inverse simplex across platform
// sizes K (ISSUE 3 tentpole).
//
// For each K the steady-state reduced LP (Sum objective, every cluster
// active) is cold-solved under both basis factorizations, then the
// sparse path performs one warm (capsule) re-solve after a departure
// event. Reported per K:
//
//   * cold solve seconds and simplex pivots for both paths (means over
//     `repeats` runs; the two paths must agree on the LP objective,
//     which this bench asserts);
//   * warm solve seconds/pivots for the sparse capsule path;
//   * capsule memory (WarmState::memory_bytes, nnz-scaled) against the
//     8*m^2 bytes the retired dense-inverse capsule would have pinned.
//
// Platforms keep a bounded average router degree (connectivity ~ 8/K)
// so the link-row count grows linearly with K, the way real federations
// scale; a constant connectivity would grow m quadratically and the
// dense baseline could not even allocate its inverse at K = 256.
//
// One "JSON {...}" line per K, collected into BENCH_lp_scaling.json at
// the repo root by CI, which fails the job when the sparse path is
// slower than the dense baseline at K >= 64. Under DLS_BENCH_SCALE < 1
// (the CI smoke configuration) the K = 256 point is skipped: its dense
// baseline alone takes tens of seconds.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "exp/experiment.hpp"
#include "lp/simplex.hpp"
#include "platform/generator.hpp"
#include "support/timer.hpp"

namespace {

dls::platform::Platform make_platform(int k, std::uint64_t seed) {
  dls::platform::GeneratorParams params;
  params.num_clusters = k;
  params.connectivity = std::min(0.4, 8.0 / k);
  params.ensure_connected = true;
  dls::Rng rng(seed + 6151 * static_cast<std::uint64_t>(k));
  return generate_platform(params, rng);
}

struct PathResult {
  double seconds = 0.0;
  int pivots = 0;
  double objective = 0.0;
};

PathResult cold_solve(const dls::lp::Model& model, dls::lp::Factorization f,
                      int repeats) {
  dls::lp::SimplexOptions opt;
  opt.factorization = f;
  opt.compute_duals = false;
  const dls::lp::SimplexSolver solver(opt);
  PathResult out;
  out.seconds = std::numeric_limits<double>::infinity();
  for (int r = 0; r < repeats; ++r) {
    dls::WallTimer timer;
    const dls::lp::Solution sol = solver.solve(model);
    // Best-of-repeats: robust against scheduler/frequency outliers that
    // would otherwise dominate the sub-millisecond points.
    out.seconds = std::min(out.seconds, timer.seconds());
    if (sol.status != dls::lp::SolveStatus::Optimal) {
      std::cerr << "lp_scaling: cold solve not optimal\n";
      std::exit(1);
    }
    out.pivots = sol.iterations;
    out.objective = sol.objective;
  }
  return out;
}

}  // namespace

int main() {
  using namespace dls;
  const std::uint64_t seed = exp::bench_seed();
  const bool full = exp::bench_scale() >= 1.0;
  // Floored at 3 even in scaled-down CI runs: the gate compares wall
  // clocks, and best-of-one has no outlier protection.
  const int repeats = std::max(3, exp::scaled(3));

  std::cout << "# LP scaling: sparse-LU vs dense-inverse revised simplex\n"
            << "# reduced steady-state model, Sum objective, all clusters active\n";

  std::vector<std::string> json_lines;
  std::vector<int> sizes{16, 32, 64, 128};
  if (full) sizes.push_back(256);
  for (const int k : sizes) {
    const platform::Platform plat = make_platform(k, seed);
    // Half the clusters host applications (with a payoff spread), the
    // other half are idle CPU donors: active applications ship load to
    // them, so the LP is contended and a departure genuinely
    // redistributes capacity instead of leaving the old basis optimal.
    std::vector<double> payoffs(static_cast<std::size_t>(k), 0.0);
    for (int c = 0; c < k; c += 2)
      payoffs[static_cast<std::size_t>(c)] = 1.0 + 0.1 * (c % 5);
    const core::SteadyStateProblem problem(plat, payoffs, core::Objective::Sum);
    core::SteadyStateProblem::ReducedModel reduced = problem.build_reduced();
    const lp::Model& model = reduced.model;

    std::size_t nnz = 0;
    for (int c = 0; c < model.num_constraints(); ++c) nnz += model.row(c).size();

    const PathResult dense =
        cold_solve(model, lp::Factorization::DenseInverse, repeats);
    const PathResult sparse =
        cold_solve(model, lp::Factorization::SparseLu, repeats);
    if (std::abs(dense.objective - sparse.objective) >
        1e-6 * std::max(1.0, std::abs(dense.objective))) {
      std::cerr << "lp_scaling: dense and sparse objectives diverge at K=" << k
                << ": " << dense.objective << " vs " << sparse.objective << "\n";
      return 1;
    }

    // Warm chain on the sparse path: fill the capsule, then re-solve
    // after a departure (one cluster's payoff drops to zero — the
    // online rescheduler's per-event shape).
    lp::SimplexOptions warm_opt;
    warm_opt.compute_duals = false;
    const lp::SimplexSolver warm_solver(warm_opt);
    lp::WarmState state;
    (void)warm_solver.solve(model, &state);
    std::vector<double> departed = payoffs;
    departed[static_cast<std::size_t>((k / 2) & ~1)] = 0.0;  // an active cluster
    const core::SteadyStateProblem after = problem.with_payoffs(departed);
    after.update_reduced_payoffs(reduced);
    WallTimer warm_timer;
    const lp::Solution warm = warm_solver.solve(model, &state);
    const double warm_seconds = warm_timer.seconds();
    if (warm.status != lp::SolveStatus::Optimal) {
      std::cerr << "lp_scaling: warm solve not optimal at K=" << k << "\n";
      return 1;
    }

    const std::size_t m = static_cast<std::size_t>(model.num_constraints());
    const std::size_t dense_binv_bytes = m * m * sizeof(double);
    const double speedup =
        sparse.seconds > 0.0 ? dense.seconds / sparse.seconds : 0.0;

    std::cout << "K=" << k << ": m=" << model.num_constraints()
              << " n=" << model.num_variables() << " nnz=" << nnz
              << "; cold dense " << dense.seconds * 1e3 << " ms ("
              << dense.pivots << " pivots) vs sparse " << sparse.seconds * 1e3
              << " ms (" << sparse.pivots << " pivots), speedup " << speedup
              << "x; warm " << warm_seconds * 1e3 << " ms, capsule "
              << state.memory_bytes() << " B vs dense " << dense_binv_bytes
              << " B\n";

    std::ostringstream js;
    js.precision(6);
    js << "{\"bench\":\"lp_scaling\",\"k\":" << k
       << ",\"rows\":" << model.num_constraints()
       << ",\"cols\":" << model.num_variables() << ",\"nnz\":" << nnz
       << ",\"repeats\":" << repeats
       << ",\"dense_cold_seconds\":" << dense.seconds
       << ",\"dense_pivots\":" << dense.pivots
       << ",\"sparse_cold_seconds\":" << sparse.seconds
       << ",\"sparse_pivots\":" << sparse.pivots
       << ",\"speedup\":" << speedup
       << ",\"objective\":" << sparse.objective
       << ",\"sparse_warm_seconds\":" << warm_seconds
       << ",\"warm_pivots\":" << warm.iterations
       << ",\"warm_used\":" << (warm.warm_used ? "true" : "false")
       << ",\"capsule_bytes\":" << state.memory_bytes()
       << ",\"dense_binv_bytes\":" << dense_binv_bytes << "}";
    json_lines.push_back(js.str());
  }
  for (const std::string& line : json_lines) std::cout << "JSON " << line << "\n";
  return 0;
}
