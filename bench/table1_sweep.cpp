// Table 1 sweep reproduction (§6.1 headline numbers): a stratified sample
// of the paper's 269,835-configuration grid. For each K, platforms are
// drawn with the remaining five parameters sampled uniformly from the
// Table-1 values, and the §6.1 aggregates are reported:
//
//   * mean LPRG/G objective ratio: paper reports 1.98 for MAXMIN and 1.02
//     for SUM over all platforms;
//   * LPR's ratio to LP: "very poor", often rounding everything to zero.
#include <cmath>
#include <iostream>
#include <string>

#include "exp/experiment.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace dls;
  const std::uint64_t seed = exp::bench_seed();
  const int per_cell = exp::scaled(8);
  std::vector<int> ks{5, 15, 25, 35, 45, 55, 65, 75};
  if (exp::bench_scale() >= 2.0) ks.insert(ks.end(), {85, 95});

  std::cout << "# Table 1 sweep (stratified sample): headline aggregates of section 6.1\n"
            << "# paper expectation: LPRG/G ~ 1.98 (MAXMIN), ~ 1.02 (SUM); LPR/LP near 0\n";

  Accumulator lprg_over_g_mm, lprg_over_g_sum, lprg_over_gdrop_mm, lprg_over_gdrop_sum;
  exp::RatioStats lpr_mm, lpr_sum, lprg_mm, lprg_sum, g_mm, g_sum, gdrop_mm, gdrop_sum;
  int lpr_zero = 0, total = 0;

  // Four method variants per replication; replications are independent,
  // so the whole grid runs as one parallel sweep (DLS_BENCH_JOBS workers).
  const platform::Table1Grid grid;
  std::vector<exp::CaseConfig> configs;
  for (const int k : ks) {
    for (int rep = 0; rep < per_cell; ++rep) {
      Rng rng(seed + 32452843ULL * k + rep);
      exp::CaseConfig config;
      config.params = exp::sample_grid_params(grid, k, rng);
      config.seed = rng.next_u64();

      config.objective = core::Objective::MaxMin;
      configs.push_back(config);
      config.objective = core::Objective::Sum;
      configs.push_back(config);
      // Greedy local-exhaust ablation: the literal paper reading drops an
      // application whose local cap is 0 instead of taking the residual.
      config.greedy.local_exhaust = core::LocalExhaustPolicy::DropApplication;
      config.objective = core::Objective::MaxMin;
      configs.push_back(config);
      config.objective = core::Objective::Sum;
      configs.push_back(config);
    }
  }
  const std::vector<exp::CaseResult> results =
      exp::run_cases(configs, exp::bench_jobs());
  for (std::size_t base = 0; base + 3 < results.size(); base += 4) {
    {
      const exp::CaseResult& mm = results[base];
      const exp::CaseResult& sum = results[base + 1];
      const exp::CaseResult& mm_drop = results[base + 2];
      const exp::CaseResult& sum_drop = results[base + 3];
      if (!mm.ok || !sum.ok || !mm_drop.ok || !sum_drop.ok) continue;
      ++total;

      if (mm.g > 1e-9) lprg_over_g_mm.add(mm.lprg / mm.g);
      if (sum.g > 1e-9) lprg_over_g_sum.add(sum.lprg / sum.g);
      if (mm_drop.g > 1e-9) lprg_over_gdrop_mm.add(mm_drop.lprg / mm_drop.g);
      if (sum_drop.g > 1e-9) lprg_over_gdrop_sum.add(sum_drop.lprg / sum_drop.g);
      lpr_mm.add(mm.lpr, mm.lp);
      lpr_sum.add(sum.lpr, sum.lp);
      lprg_mm.add(mm.lprg, mm.lp);
      lprg_sum.add(sum.lprg, sum.lp);
      g_mm.add(mm.g, mm.lp);
      g_sum.add(sum.g, sum.lp);
      gdrop_mm.add(mm_drop.g, mm_drop.lp);
      gdrop_sum.add(sum_drop.g, sum_drop.lp);
      if (mm.lpr < 1e-9 && mm.lp > 1e-9) ++lpr_zero;
    }
  }

  TextTable table({"aggregate", "MAXMIN", "SUM"});
  table.add_row({"mean LPRG/G", TextTable::fmt(lprg_over_g_mm.mean(), 3),
                 TextTable::fmt(lprg_over_g_sum.mean(), 3)});
  table.add_row({"mean LPRG/G(drop-app)", TextTable::fmt(lprg_over_gdrop_mm.mean(), 3),
                 TextTable::fmt(lprg_over_gdrop_sum.mean(), 3)});
  table.add_row({"mean LPR/LP", TextTable::fmt(lpr_mm.mean(), 3),
                 TextTable::fmt(lpr_sum.mean(), 3)});
  table.add_row({"mean LPRG/LP", TextTable::fmt(lprg_mm.mean(), 3),
                 TextTable::fmt(lprg_sum.mean(), 3)});
  table.add_row({"mean G/LP", TextTable::fmt(g_mm.mean(), 3),
                 TextTable::fmt(g_sum.mean(), 3)});
  table.add_row({"mean G(drop-app)/LP", TextTable::fmt(gdrop_mm.mean(), 3),
                 TextTable::fmt(gdrop_sum.mean(), 3)});
  table.print(std::cout);
  std::cout << "platforms: " << total << "; MAXMIN cases where LPR rounded to zero: "
            << lpr_zero << "\n";
  return 0;
}
