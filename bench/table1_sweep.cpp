// Table 1 sweep reproduction (§6.1 headline numbers), driven by the
// committed declarative spec data/table1_sweep.campaign through the
// campaign runner: a stratified sample of the paper's
// 269,835-configuration grid, with the greedy local-exhaust ablation on
// the spec's exhaust axis. The §6.1 aggregates are recomputed from the
// runner's streaming per-case record sink:
//
//   * mean LPRG/G objective ratio: paper reports 1.98 for MAXMIN and 1.02
//     for SUM over all platforms;
//   * LPR's ratio to LP: "very poor", often rounding everything to zero.
//
// DLS_BENCH_SCALE scales the spec's replication count; DLS_BENCH_JOBS
// sets the worker count; DLS_BENCH_SEED overrides the spec seed.
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>

#include "campaign/runner.hpp"
#include "exp/experiment.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace dls;
  campaign::ScenarioSpec spec = campaign::read_campaign_file(
      {"data/table1_sweep.campaign", "../data/table1_sweep.campaign"});
  spec.replications = exp::scaled(spec.replications);
  if (std::getenv("DLS_BENCH_SEED") != nullptr) spec.seed = exp::bench_seed();

  std::cout << "# Table 1 sweep (stratified sample): headline aggregates of section 6.1\n"
            << "# paper expectation: LPRG/G ~ 1.98 (MAXMIN), ~ 1.02 (SUM); LPR/LP near 0\n"
            << "# spec: " << spec.name << ", " << spec.platforms.size()
            << " grid cells x " << spec.replications << " replications\n";

  // Streaming aggregation over the runner's ordered per-case records:
  // every statistic below is derived from the case stream, not from a
  // materialized result vector.
  Accumulator lprg_over_g_mm, lprg_over_g_sum, lprg_over_gdrop_mm, lprg_over_gdrop_sum;
  exp::RatioAccumulator lpr_mm, lpr_sum, lprg_mm, lprg_sum, g_mm, g_sum, gdrop_mm,
      gdrop_sum;
  int lpr_zero = 0, total = 0, failed = 0;

  campaign::RunnerOptions options;
  options.jobs = exp::bench_jobs();
  options.case_sink = [&](const campaign::CampaignReport& report,
                          const campaign::CaseRecord& record) {
    const campaign::GroupAggregate& group = report.groups[record.group];
    const auto value = [&](const char* name) {
      for (std::size_t i = 0; i < group.metrics.size(); ++i)
        if (group.metrics[i].name == name) return record.values[i];
      return std::numeric_limits<double>::quiet_NaN();
    };
    if (value("ok") != 1.0) {
      ++failed;
      return;
    }
    ++total;
    const bool mm = group.objective == "maxmin";
    const bool drop = group.exhaust == "drop";
    // Per-case ratios are already normalized by the LP bound, so the
    // RatioAccumulators receive (ratio, 1).
    const double rg = value("ratio_g");
    const double rlpr = value("ratio_lpr");
    const double rlprg = value("ratio_lprg");
    const double over_g = value("lprg_over_g");
    if (drop) {
      (mm ? gdrop_mm : gdrop_sum).add(rg, 1.0);
      if (!std::isnan(over_g)) (mm ? lprg_over_gdrop_mm : lprg_over_gdrop_sum).add(over_g);
      return;
    }
    (mm ? g_mm : g_sum).add(rg, 1.0);
    (mm ? lpr_mm : lpr_sum).add(rlpr, 1.0);
    (mm ? lprg_mm : lprg_sum).add(rlprg, 1.0);
    if (!std::isnan(over_g)) (mm ? lprg_over_g_mm : lprg_over_g_sum).add(over_g);
    if (mm && rlpr < 1e-9 && value("lp_bound") > 1e-9) ++lpr_zero;
  };

  const campaign::CampaignReport report = campaign::run_campaign(spec, options);

  TextTable table({"aggregate", "MAXMIN", "SUM"});
  table.add_row({"mean LPRG/G", TextTable::fmt(lprg_over_g_mm.mean(), 3),
                 TextTable::fmt(lprg_over_g_sum.mean(), 3)});
  table.add_row({"mean LPRG/G(drop-app)", TextTable::fmt(lprg_over_gdrop_mm.mean(), 3),
                 TextTable::fmt(lprg_over_gdrop_sum.mean(), 3)});
  table.add_row({"mean LPR/LP", TextTable::fmt(lpr_mm.mean(), 3),
                 TextTable::fmt(lpr_sum.mean(), 3)});
  table.add_row({"mean LPRG/LP", TextTable::fmt(lprg_mm.mean(), 3),
                 TextTable::fmt(lprg_sum.mean(), 3)});
  table.add_row({"mean G/LP", TextTable::fmt(g_mm.mean(), 3),
                 TextTable::fmt(g_sum.mean(), 3)});
  table.add_row({"mean G(drop-app)/LP", TextTable::fmt(gdrop_mm.mean(), 3),
                 TextTable::fmt(gdrop_sum.mean(), 3)});
  table.add_row({"stddev LPRG/LP", TextTable::fmt(lprg_mm.stddev(), 3),
                 TextTable::fmt(lprg_sum.stddev(), 3)});
  table.print(std::cout);
  std::cout << "cases: " << total << " ok, " << failed << " failed of "
            << report.total_cases << " (" << report.platform_builds
            << " platform builds, " << report.platform_cache_hits
            << " cache hits); MAXMIN cases where LPR rounded to zero: "
            << lpr_zero << "\n";
  return 0;
}
