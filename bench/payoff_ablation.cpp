// Ablation: how the (paper-unspecified) application payoff spread shapes
// the evaluation. With uniform payoffs (spread 0) local-only computation
// is optimal, G pins at ratio 1.0 and the network never binds; widening
// the spread makes both objectives network-bound and opens the gaps the
// paper's Figure 5 reports. This experiment is the evidence behind the
// payoff interpretation documented in DESIGN.md.
#include <iostream>
#include <string>

#include "exp/experiment.hpp"
#include "support/table.hpp"

int main() {
  using namespace dls;
  const std::uint64_t seed = exp::bench_seed();
  const int per_cell = exp::scaled(8);
  const int k = 25;

  std::cout << "# Payoff-spread ablation at K = " << k << " (" << per_cell
            << " platforms per spread)\n"
            << "# spread 0 => local-only optimal, G/LP = 1; growing spread =>\n"
            << "# network-bound instances and the paper's heuristic gaps\n";

  TextTable table({"spread", "MAXMIN(G)/LP", "MAXMIN(LPRG)/LP", "SUM(G)/LP",
                   "SUM(LPRG)/LP", "cases"});
  const platform::Table1Grid grid;
  for (const double spread : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    exp::RatioAccumulator mm_g, mm_lprg, sum_g, sum_lprg;
    int cases = 0;
    for (int rep = 0; rep < per_cell; ++rep) {
      Rng rng(seed + 7001ULL * rep + static_cast<std::uint64_t>(spread * 100));
      exp::CaseConfig config;
      config.params = exp::sample_grid_params(grid, k, rng);
      config.seed = rng.next_u64();
      config.payoff_spread = spread;

      config.objective = core::Objective::MaxMin;
      const exp::CaseResult mm = exp::run_case(config);
      config.objective = core::Objective::Sum;
      const exp::CaseResult sum = exp::run_case(config);
      if (!mm.ok || !sum.ok) continue;
      ++cases;
      mm_g.add(mm.g, mm.lp);
      mm_lprg.add(mm.lprg, mm.lp);
      sum_g.add(sum.g, sum.lp);
      sum_lprg.add(sum.lprg, sum.lp);
    }
    table.add_row({TextTable::fmt(spread, 1), TextTable::fmt(mm_g.mean(), 4),
                   TextTable::fmt(mm_lprg.mean(), 4), TextTable::fmt(sum_g.mean(), 4),
                   TextTable::fmt(sum_lprg.mean(), 4), std::to_string(cases)});
  }
  table.print(std::cout);
  return 0;
}
