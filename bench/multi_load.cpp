// Multi-load steady-state benchmark (ISSUE 8).
//
// Two questions:
//
//   1. Joint-solve scaling: for platform size K and concurrent load
//      count N, how does one joint LP scale in N, and what does the
//      objective choice buy? Each (K, N) cell solves the same sampled
//      load set under WeightedSum and MaxMin and reports solve time,
//      Jain fairness and the worst weighted throughput — the fairness
//      curve the paper's single-load model cannot express.
//
//   2. Shared LP vs N independent solves on an event sequence: a
//      churned arrival/departure stream is rescheduled two ways —
//      through the MultiLoadRescheduler (ONE shared slot LP, arrivals
//      and departures are bound/cost patches under a carried simplex
//      capsule) and by solving each active load's single-load LP cold
//      at every event (the pre-ISSUE-8 architecture: N independent
//      programs, no shared state). The headline metric is
//          shared_cold_ratio = shared warm ms/event / independent cold
//          ms/event,
//      expected below 1 from K >= 64 (CI gates on it); the independent
//      baseline additionally misallocates shared links, which the
//      sum_throughput columns make visible.
//
// One machine-readable JSON object per cell is printed on its own line
// (prefix "JSON "); CI collects these into BENCH_multi_load.json at the
// repo root. Each line carries the build stamp (support/build_info) so
// a committed artifact is traceable to its producing binary.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/multi_solve.hpp"
#include "exp/experiment.hpp"
#include "online/metrics.hpp"
#include "online/rescheduler.hpp"
#include "platform/generator.hpp"
#include "support/build_info.hpp"
#include "support/timer.hpp"

namespace {

dls::platform::Platform make_platform(int k, std::uint64_t seed) {
  dls::platform::GeneratorParams params;
  params.num_clusters = k;
  params.ensure_connected = true;
  dls::Rng rng(seed + 7919 * static_cast<std::uint64_t>(k));
  return generate_platform(params, rng);
}

dls::core::LoadSet make_loads(int n, int k, dls::Rng& rng) {
  dls::core::LoadSet set;
  for (int j = 0; j < n; ++j) {
    dls::core::LoadSpec load;
    load.source = static_cast<int>(rng.uniform_int(0, k - 1));
    load.weight = 1.0 + 0.5 * rng.uniform(-1.0, 1.0);
    set.loads.push_back(load);
  }
  return set;
}

double min_weighted(const dls::core::LoadSet& set,
                    const std::vector<double>& throughput) {
  double worst = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < throughput.size(); ++j)
    worst = std::min(worst, set.loads[j].weight * throughput[j]);
  return throughput.empty() ? 0.0 : worst;
}

}  // namespace

int main() {
  using namespace dls;
  const std::uint64_t seed = exp::bench_seed();
  const std::string build = support::build_summary();

  std::cout << "# Multi-load steady state: joint-LP scaling in N, and shared\n"
            << "# warm-patched LP vs N independent cold solves per event\n"
            << "# " << build << "\n";

  std::vector<std::string> json_lines;

  // 1. Joint-solve scaling and the fairness story.
  for (const int k : {16, 64}) {
    const platform::Platform plat = make_platform(k, seed);
    for (const int n : {2, 4, 8, 16}) {
      Rng rng(seed ^ (0x6d6cULL + 131 * static_cast<std::uint64_t>(k) +
                      static_cast<std::uint64_t>(n)));
      const core::LoadSet set = make_loads(n, k, rng);

      core::MultiLoadSolveOptions options;
      options.objective = core::MultiObjective::WeightedSum;
      WallTimer sum_timer;
      const core::MultiLoadSolution sum = core::solve_loads(plat, set, options);
      const double sum_seconds = sum_timer.seconds();

      options.objective = core::MultiObjective::MaxMin;
      WallTimer mm_timer;
      const core::MultiLoadSolution mm = core::solve_loads(plat, set, options);
      const double mm_seconds = mm_timer.seconds();

      if (sum.status != lp::SolveStatus::Optimal ||
          mm.status != lp::SolveStatus::Optimal) {
        std::cout << "K=" << k << " N=" << n << ": solve failed, skipping\n";
        continue;
      }
      std::cout << "K=" << k << " N=" << n << ": sum "
                << 1e3 * sum_seconds << " ms (Jain "
                << online::jain_index(sum.throughput) << "), maxmin "
                << 1e3 * mm_seconds << " ms (Jain "
                << online::jain_index(mm.throughput) << ", min weighted "
                << min_weighted(set, mm.throughput) << ")\n";

      std::ostringstream js;
      js.precision(6);
      js << "{\"bench\":\"multi_load\",\"k\":" << k << ",\"n\":" << n
         << ",\"sum_seconds\":" << sum_seconds
         << ",\"sum_iterations\":" << sum.lp_iterations
         << ",\"sum_throughput\":" << sum.objective
         << ",\"sum_jain\":" << online::jain_index(sum.throughput)
         << ",\"sum_min_weighted\":" << min_weighted(set, sum.throughput)
         << ",\"maxmin_seconds\":" << mm_seconds
         << ",\"maxmin_iterations\":" << mm.lp_iterations
         << ",\"maxmin_jain\":" << online::jain_index(mm.throughput)
         << ",\"maxmin_min_weighted\":" << min_weighted(set, mm.throughput)
         << ",\"build\":\"" << build << "\"}";
      json_lines.push_back(js.str());
    }
  }

  // 2. Event sequence: shared warm-patched LP vs N independent cold
  // solves. The stream keeps ~8 loads active: each event flips a coin
  // between an arrival (fresh id, random home cluster) and a departure
  // (random active load), biased to pull the count back to 8.
  for (const int k : {16, 64}) {
    const platform::Platform plat = make_platform(k, seed + 1);
    const int events = exp::scaled(160);

    // Build the event sequence once so both replays see identical sets.
    Rng rng(seed ^ (0xe7e7ULL + static_cast<std::uint64_t>(k)));
    std::vector<std::vector<online::ActiveLoad>> states;
    std::vector<online::ActiveLoad> active;
    int next_id = 0;
    for (int e = 0; e < events; ++e) {
      const bool arrive = active.empty() ||
                          rng.uniform(0.0, 8.0) > static_cast<double>(active.size());
      if (arrive) {
        online::ActiveLoad load;
        load.id = next_id++;
        load.cluster = static_cast<int>(rng.uniform_int(0, k - 1));
        load.weight = 1.0 + 0.5 * rng.uniform(-1.0, 1.0);
        active.push_back(load);
      } else {
        const std::size_t victim = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(active.size()) - 1));
        active[victim] = active.back();
        active.pop_back();
      }
      if (!active.empty()) states.push_back(active);
    }

    // Shared LP: one rescheduler carried across every event.
    online::MultiReschedulerOptions shared_options;
    shared_options.solve.objective = core::MultiObjective::WeightedSum;
    online::MultiLoadRescheduler shared(plat, shared_options);
    double shared_seconds = 0.0;
    double shared_throughput = 0.0;
    for (const auto& state : states) {
      const online::MultiReschedule r = shared.reschedule(state);
      shared_seconds += r.seconds;
      shared_throughput += r.objective;
    }

    // Independent baseline: every event re-solves each active load's
    // single-load LP cold (no shared state, no capsule).
    double independent_seconds = 0.0;
    double independent_throughput = 0.0;
    core::MultiLoadSolveOptions cold_options;
    cold_options.objective = core::MultiObjective::WeightedSum;
    for (const auto& state : states) {
      WallTimer timer;
      double total = 0.0;
      for (const online::ActiveLoad& load : state) {
        core::LoadSet one;
        core::LoadSpec spec;
        spec.source = load.cluster;
        spec.weight = load.weight;
        one.loads.push_back(spec);
        const core::MultiLoadSolution sol =
            core::solve_loads(plat, one, cold_options);
        total += sol.objective;
      }
      independent_seconds += timer.seconds();
      independent_throughput += total;
    }

    const double n_events = static_cast<double>(states.size());
    const double shared_ms = 1e3 * shared_seconds / n_events;
    const double independent_ms = 1e3 * independent_seconds / n_events;
    const double ratio = independent_ms > 0.0 ? shared_ms / independent_ms : 0.0;
    const online::MultiLoadRescheduler::Stats& stats = shared.stats();

    std::cout << "K=" << k << ": " << states.size() << " events, shared LP "
              << shared_ms << " ms/event (" << stats.warm_solves << "/"
              << states.size() << " warm, " << shared.slot_count()
              << " slots) vs independent cold " << independent_ms
              << " ms/event (ratio " << ratio << ")\n";

    std::ostringstream js;
    js.precision(6);
    js << "{\"bench\":\"multi_load_events\",\"k\":" << k
       << ",\"events\":" << states.size()
       << ",\"shared_warm_solves\":" << stats.warm_solves
       << ",\"shared_cold_solves\":" << stats.cold_solves
       << ",\"shared_slots\":" << shared.slot_count()
       << ",\"shared_ms_per_event\":" << shared_ms
       << ",\"independent_ms_per_event\":" << independent_ms
       << ",\"shared_cold_ratio\":" << ratio
       << ",\"shared_objective_per_event\":" << shared_throughput / n_events
       << ",\"independent_objective_per_event\":"
       << independent_throughput / n_events
       << ",\"build\":\"" << build << "\"}";
    json_lines.push_back(js.str());
  }

  for (const std::string& line : json_lines) std::cout << "JSON " << line << "\n";
  return 0;
}
