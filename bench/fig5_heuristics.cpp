// Figure 5 reproduction: mean objective value of LPRG and G relative to
// the LP upper bound, versus the number of clusters K, for both the
// MAXMIN and SUM objectives.
//
// Paper result: LPRG(SUM)/LP climbs towards ~1 as K grows and always
// dominates G(SUM)/LP; for MAXMIN both heuristics sit much lower
// (~0.6-0.7 at large K, where LPRR is needed), with LPRG overtaking G as
// K grows past ~10 and G slightly ahead at K = 5.
#include <iostream>
#include <string>

#include "exp/experiment.hpp"
#include "support/table.hpp"

int main() {
  using namespace dls;
  const std::uint64_t seed = exp::bench_seed();
  const int per_k = exp::scaled(6);
  // The full paper K range; sized for a couple of minutes on one core.
  const std::vector<int> ks{5, 15, 25, 35, 45, 55, 65, 75, 85, 95};

  std::cout << "# Figure 5: objective value relative to the LP bound vs K ("
            << per_k << " platforms per K, parameters sampled from Table 1)\n"
            << "# paper expectation: SUM(LPRG) -> ~1 and > SUM(G);"
            << " MAXMIN ratios much lower; MAXMIN(G) competitive only at small K\n";

  TextTable table({"K", "MAXMIN(LPRG)/LP", "MAXMIN(G)/LP", "SUM(LPRG)/LP",
                   "SUM(G)/LP", "cases"});
  const platform::Table1Grid grid;
  for (const int k : ks) {
    exp::RatioAccumulator mm_lprg, mm_g, sum_lprg, sum_g;
    int cases = 0;
    for (int rep = 0; rep < per_k; ++rep) {
      Rng rng(seed + 104729ULL * k + rep);
      exp::CaseConfig config;
      config.params = exp::sample_grid_params(grid, k, rng);
      config.seed = rng.next_u64();

      config.objective = core::Objective::MaxMin;
      const exp::CaseResult mm = exp::run_case(config);
      config.objective = core::Objective::Sum;
      const exp::CaseResult sum = exp::run_case(config);
      if (!mm.ok || !sum.ok) continue;
      ++cases;
      mm_lprg.add(mm.lprg, mm.lp);
      mm_g.add(mm.g, mm.lp);
      sum_lprg.add(sum.lprg, sum.lp);
      sum_g.add(sum.g, sum.lp);
    }
    table.add_row({std::to_string(k), TextTable::fmt(mm_lprg.mean(), 4),
                   TextTable::fmt(mm_g.mean(), 4), TextTable::fmt(sum_lprg.mean(), 4),
                   TextTable::fmt(sum_g.mean(), 4), std::to_string(cases)});
  }
  table.print(std::cout);
  return 0;
}
