// Campaign scheduling bench: dynamic chunked parallel_for vs the old
// static up-front partition (four contiguous blocks per worker,
// parallel_for_static) on a skewed case mix.
//
// The sweep's cost distribution is heavily skewed: an LPRR case is ~K^2
// LP solves while a plain heuristic case finishes in milliseconds. With
// a static partition the worker that draws the block of LPRR cases
// serializes them while the rest of the pool idles; with the atomic-
// cursor dynamic schedule the heavy cases spread across workers as soon
// as any worker is free. The mix below puts all heavy cases at the
// front of the range — the static partition's worst (and, for a sorted
// case list, typical) layout.
//
// Both schedules run the identical case list and must produce bitwise
// identical results (asserted). Two headline numbers:
//
//   * measured speedup = static_seconds / dynamic_seconds — meaningful
//     only on a multi-core machine (both schedules serialize on one
//     hardware thread);
//   * projected speedup = static / dynamic *critical path* for an
//     n-worker pool, replayed from the measured per-case costs. The
//     replay assigns work to the earliest-free worker in index order —
//     exactly the pool's pull discipline at each schedule's granularity
//     (blocks of ~size/(4*workers) vs single cases) — so it reports
//     what the schedules would do with real parallelism even when the
//     bench itself ran on one core.
//
// Cases run through one shared lp::BatchSolver (per-thread solve arenas
// + shared column-structure cache), same as the campaign runner.
//
// One machine-readable JSON line is printed (prefix "JSON "), collected
// into BENCH_campaign.json by CI.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <numeric>
#include <sstream>
#include <vector>

#include "exp/experiment.hpp"
#include "lp/batch.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace {

/// Replays a schedule over the measured per-case costs: pieces (index
/// ranges) are handed to the earliest-free worker in order; returns the
/// makespan (critical path = the busiest worker's finish time).
double replay_makespan(const std::vector<double>& costs,
                       const std::vector<std::pair<std::size_t, std::size_t>>& pieces,
                       std::size_t workers) {
  std::vector<double> free_at(workers, 0.0);
  for (const auto& [begin, end] : pieces) {
    double piece = 0.0;
    for (std::size_t i = begin; i < end; ++i) piece += costs[i];
    auto it = std::min_element(free_at.begin(), free_at.end());
    *it += piece;
  }
  return *std::max_element(free_at.begin(), free_at.end());
}

std::vector<std::pair<std::size_t, std::size_t>> static_blocks(
    std::size_t n, std::size_t workers) {
  // parallel_for_static's layout: at most four contiguous blocks per
  // worker, cut up front.
  const std::size_t blocks = std::max<std::size_t>(1, 4 * workers);
  const std::size_t chunk = std::max<std::size_t>(1, (n + blocks - 1) / blocks);
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t b = 0; b * chunk < n; ++b)
    out.push_back({b * chunk, std::min(n, (b + 1) * chunk)});
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>> case_pieces(std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back({i, i + 1});
  return out;
}

}  // namespace

int main() {
  using namespace dls;
  const std::uint64_t seed = exp::bench_seed();
  const int heavy = exp::scaled(6);    // LPRR at K=20: ~K^2 LP solves each
  const int light = exp::scaled(60);   // plain heuristics at K=8
  const int jobs = exp::bench_jobs() > 0 ? exp::bench_jobs() : 0;

  const platform::Table1Grid grid;
  std::vector<exp::CaseConfig> configs;
  for (int i = 0; i < heavy + light; ++i) {
    Rng rng(seed + 512927357ULL * static_cast<std::uint64_t>(i));
    exp::CaseConfig config;
    const bool is_heavy = i < heavy;
    config.params = exp::sample_grid_params(grid, is_heavy ? 20 : 8, rng);
    config.with_lprr = is_heavy;
    config.seed = rng.next_u64();
    configs.push_back(config);
  }

  ThreadPool pool(jobs == 0 ? 0 : static_cast<std::size_t>(jobs));
  std::cout << "# Dynamic chunked scheduling vs static partition on a skewed "
               "LPRR/greedy case mix\n"
            << "# " << heavy << " heavy (LPRR, K=20) + " << light
            << " light (K=8) cases, " << pool.size() << " workers\n";

  // One batch for every pass, like the campaign runner: per-thread
  // arenas, one shared column-structure cache across all cases.
  lp::BatchSolver lps;

  std::vector<double> case_seconds(configs.size(), 0.0);
  const auto run = [&](bool dynamic) {
    std::vector<exp::CaseResult> results(configs.size());
    const auto body = [&](std::size_t i) {
      WallTimer case_timer;
      results[i] = exp::run_case(configs[i], lps);
      case_seconds[i] = case_timer.seconds();
    };
    WallTimer timer;
    if (dynamic) {
      parallel_for(pool, 0, configs.size(), body, 1);
    } else {
      parallel_for_static(pool, 0, configs.size(), body);
    }
    const double seconds = timer.seconds();
    return std::pair<double, std::vector<exp::CaseResult>>(seconds,
                                                           std::move(results));
  };

  // Warm-up pass so neither timed pass pays first-touch costs.
  (void)run(true);
  const auto [static_seconds, static_results] = run(false);
  const auto [dynamic_seconds, dynamic_results] = run(true);

  for (std::size_t i = 0; i < configs.size(); ++i) {
    const exp::CaseResult& a = static_results[i];
    const exp::CaseResult& b = dynamic_results[i];
    const auto same = [](double x, double y) {
      return (std::isnan(x) && std::isnan(y)) || x == y;
    };
    if (a.ok != b.ok || !same(a.g, b.g) || !same(a.lpr, b.lpr) ||
        !same(a.lprg, b.lprg) || !same(a.lprr, b.lprr)) {
      std::cerr << "FATAL: dynamic schedule changed case " << i
                << "'s results (scheduling must only move work, never "
                   "numbers)\n";
      return 1;
    }
  }

  const double speedup =
      dynamic_seconds > 0.0 ? static_seconds / dynamic_seconds : 0.0;
  std::cout << "static partition: " << static_seconds << "s; dynamic chunked: "
            << dynamic_seconds << "s; speedup " << speedup << "x\n";
  if (std::thread::hardware_concurrency() < 2) {
    std::cout << "note: single hardware thread — both schedules serialize; "
                 "the projected critical paths below carry the comparison\n";
  }

  // Critical-path replay over the measured per-case costs (from the
  // final dynamic pass) for a canonical multi-worker pool.
  const std::size_t sim_workers =
      std::max<std::size_t>(4, std::thread::hardware_concurrency());
  const double total_cost =
      std::accumulate(case_seconds.begin(), case_seconds.end(), 0.0);
  const double static_cp = replay_makespan(
      case_seconds, static_blocks(case_seconds.size(), sim_workers), sim_workers);
  const double dynamic_cp =
      replay_makespan(case_seconds, case_pieces(case_seconds.size()), sim_workers);
  const double projected =
      dynamic_cp > 0.0 ? static_cp / dynamic_cp : 0.0;
  std::cout << "projected for " << sim_workers << " workers from per-case costs"
            << " (total " << total_cost << "s): static critical path "
            << static_cp << "s, dynamic " << dynamic_cp << "s, speedup "
            << projected << "x\n";

  const lp::BatchSolver::Stats bstats = lps.stats();

  std::ostringstream js;
  js.precision(6);
  js << "{\"bench\":\"campaign_sched\",\"heavy_cases\":" << heavy
     << ",\"light_cases\":" << light << ",\"workers\":" << pool.size()
     << ",\"hardware_threads\":" << std::thread::hardware_concurrency()
     << ",\"static_seconds\":" << static_seconds
     << ",\"dynamic_seconds\":" << dynamic_seconds
     << ",\"speedup\":" << speedup
     << ",\"case_cost_seconds\":" << total_cost
     << ",\"sim_workers\":" << sim_workers
     << ",\"static_critical_seconds\":" << static_cp
     << ",\"dynamic_critical_seconds\":" << dynamic_cp
     << ",\"projected_speedup\":" << projected
     << ",\"batch_cache_builds\":" << bstats.cache_misses
     << ",\"results_match\":1}";
  std::cout << "JSON " << js.str() << "\n";
  return 0;
}
