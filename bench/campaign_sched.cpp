// Campaign scheduling bench: dynamic chunked parallel_for vs the old
// static up-front partition (four contiguous blocks per worker,
// parallel_for_static) on a skewed case mix.
//
// The sweep's cost distribution is heavily skewed: an LPRR case is ~K^2
// LP solves while a plain heuristic case finishes in milliseconds. With
// a static partition the worker that draws the block of LPRR cases
// serializes them while the rest of the pool idles; with the atomic-
// cursor dynamic schedule the heavy cases spread across workers as soon
// as any worker is free. The mix below puts all heavy cases at the
// front of the range — the static partition's worst (and, for a sorted
// case list, typical) layout.
//
// Both schedules run the identical case list and must produce bitwise
// identical results (asserted); the headline is
//     speedup = static_seconds / dynamic_seconds,  expected > 1.
//
// One machine-readable JSON line is printed (prefix "JSON "), collected
// into BENCH_campaign.json by CI.
#include <cmath>
#include <iostream>
#include <sstream>
#include <vector>

#include "exp/experiment.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

int main() {
  using namespace dls;
  const std::uint64_t seed = exp::bench_seed();
  const int heavy = exp::scaled(6);    // LPRR at K=20: ~K^2 LP solves each
  const int light = exp::scaled(60);   // plain heuristics at K=8
  const int jobs = exp::bench_jobs() > 0 ? exp::bench_jobs() : 0;

  const platform::Table1Grid grid;
  std::vector<exp::CaseConfig> configs;
  for (int i = 0; i < heavy + light; ++i) {
    Rng rng(seed + 512927357ULL * static_cast<std::uint64_t>(i));
    exp::CaseConfig config;
    const bool is_heavy = i < heavy;
    config.params = exp::sample_grid_params(grid, is_heavy ? 20 : 8, rng);
    config.with_lprr = is_heavy;
    config.seed = rng.next_u64();
    configs.push_back(config);
  }

  ThreadPool pool(jobs == 0 ? 0 : static_cast<std::size_t>(jobs));
  std::cout << "# Dynamic chunked scheduling vs static partition on a skewed "
               "LPRR/greedy case mix\n"
            << "# " << heavy << " heavy (LPRR, K=20) + " << light
            << " light (K=8) cases, " << pool.size() << " workers\n";

  const auto run = [&](bool dynamic) {
    std::vector<exp::CaseResult> results(configs.size());
    const auto body = [&](std::size_t i) { results[i] = exp::run_case(configs[i]); };
    WallTimer timer;
    if (dynamic) {
      parallel_for(pool, 0, configs.size(), body, 1);
    } else {
      parallel_for_static(pool, 0, configs.size(), body);
    }
    const double seconds = timer.seconds();
    return std::pair<double, std::vector<exp::CaseResult>>(seconds,
                                                           std::move(results));
  };

  // Warm-up pass so neither timed pass pays first-touch costs.
  (void)run(true);
  const auto [static_seconds, static_results] = run(false);
  const auto [dynamic_seconds, dynamic_results] = run(true);

  for (std::size_t i = 0; i < configs.size(); ++i) {
    const exp::CaseResult& a = static_results[i];
    const exp::CaseResult& b = dynamic_results[i];
    const auto same = [](double x, double y) {
      return (std::isnan(x) && std::isnan(y)) || x == y;
    };
    if (a.ok != b.ok || !same(a.g, b.g) || !same(a.lpr, b.lpr) ||
        !same(a.lprg, b.lprg) || !same(a.lprr, b.lprr)) {
      std::cerr << "FATAL: dynamic schedule changed case " << i
                << "'s results (scheduling must only move work, never "
                   "numbers)\n";
      return 1;
    }
  }

  const double speedup =
      dynamic_seconds > 0.0 ? static_seconds / dynamic_seconds : 0.0;
  std::cout << "static partition: " << static_seconds << "s; dynamic chunked: "
            << dynamic_seconds << "s; speedup " << speedup << "x\n";
  if (std::thread::hardware_concurrency() < 2) {
    std::cout << "note: single hardware thread — both schedules serialize, "
                 "the comparison needs a multi-core machine\n";
  }

  std::ostringstream js;
  js.precision(6);
  js << "{\"bench\":\"campaign_sched\",\"heavy_cases\":" << heavy
     << ",\"light_cases\":" << light << ",\"workers\":" << pool.size()
     << ",\"hardware_threads\":" << std::thread::hardware_concurrency()
     << ",\"static_seconds\":" << static_seconds
     << ",\"dynamic_seconds\":" << dynamic_seconds
     << ",\"speedup\":" << speedup << ",\"results_match\":1}";
  std::cout << "JSON " << js.str() << "\n";
  return 0;
}
