// Extension experiment X1 (DESIGN.md): google-benchmark microbenchmarks
// of the LP substrate on steady-state programs.
//
//   * reduced vs full formulation: the beta-substituted program has K^2
//     fewer columns and K^2 fewer rows — measure the solve-time gap that
//     justifies using it everywhere;
//   * scaling in K for the reduced form;
//   * the greedy heuristic as a baseline (no LP at all).
#include <benchmark/benchmark.h>

#include "core/heuristics.hpp"
#include "core/problem.hpp"
#include "core/schedule.hpp"
#include "exp/experiment.hpp"
#include "lp/simplex.hpp"
#include "platform/generator.hpp"
#include "support/rng.hpp"

namespace {

using namespace dls;

platform::Platform make_platform(int k, std::uint64_t salt) {
  Rng rng(exp::bench_seed() + salt);
  const platform::Table1Grid grid;
  platform::GeneratorParams params = exp::sample_grid_params(grid, k, rng);
  return generate_platform(params, rng);
}

void BM_ReducedLp(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto plat = make_platform(k, 1);
  const core::SteadyStateProblem problem(plat, std::vector<double>(k, 1.0),
                                         core::Objective::MaxMin);
  std::int64_t iterations = 0;
  for (auto _ : state) {
    const auto reduced = problem.build_reduced();
    const auto sol = lp::SimplexSolver().solve(reduced.model);
    benchmark::DoNotOptimize(sol.objective);
    iterations += sol.iterations;
  }
  state.counters["simplex_iters"] =
      benchmark::Counter(static_cast<double>(iterations), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ReducedLp)->Arg(5)->Arg(10)->Arg(20)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_FullLp(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto plat = make_platform(k, 1);  // same platform as BM_ReducedLp
  const core::SteadyStateProblem problem(plat, std::vector<double>(k, 1.0),
                                         core::Objective::MaxMin);
  std::int64_t iterations = 0;
  for (auto _ : state) {
    const auto full = problem.build_full(false);
    const auto sol = lp::SimplexSolver().solve(full.model);
    benchmark::DoNotOptimize(sol.objective);
    iterations += sol.iterations;
  }
  state.counters["simplex_iters"] =
      benchmark::Counter(static_cast<double>(iterations), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_FullLp)->Arg(5)->Arg(10)->Arg(20)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_Greedy(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto plat = make_platform(k, 1);
  const core::SteadyStateProblem problem(plat, std::vector<double>(k, 1.0),
                                         core::Objective::MaxMin);
  for (auto _ : state) {
    const auto result = core::run_greedy(problem);
    benchmark::DoNotOptimize(result.objective);
  }
}
BENCHMARK(BM_Greedy)->Arg(5)->Arg(10)->Arg(20)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_PlatformGeneration(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  std::uint64_t salt = 0;
  for (auto _ : state) {
    const auto plat = make_platform(k, salt++);
    benchmark::DoNotOptimize(plat.num_links());
  }
}
BENCHMARK(BM_PlatformGeneration)->Arg(10)->Arg(50)->Arg(95)->Unit(benchmark::kMillisecond);

void BM_ScheduleReconstruction(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto plat = make_platform(k, 2);
  const core::SteadyStateProblem problem(plat, std::vector<double>(k, 1.0),
                                         core::Objective::MaxMin);
  const auto h = core::run_lprg(problem);
  for (auto _ : state) {
    const auto sched = core::build_periodic_schedule(problem, h.allocation);
    benchmark::DoNotOptimize(sched.period);
  }
}
BENCHMARK(BM_ScheduleReconstruction)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
