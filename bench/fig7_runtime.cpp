// Figure 7 reproduction: running time of G, LPR, LPRG and LPRR versus the
// number of clusters K (log scale in the paper).
//
// Paper result (Pentium III 800MHz, lp_solve): G <= 0.1s; LP/LPR/LPRG grow
// from ~0.5s (K=10) to ~2s (K=40); LPRR is ~1000x LPRG at K=40 because it
// solves ~K^2 linear programs. Absolute numbers differ on modern hardware
// and with our own simplex, but the *separations* must hold: G orders of
// magnitude below the LP family, and LPRR above LPRG by a factor that
// grows roughly like the number of LP solves.
#include <cstdio>
#include <iostream>

#include "exp/experiment.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace dls;
  const std::uint64_t seed = exp::bench_seed();
  const int reps = exp::scaled(3);
  // LPRR is restricted to smaller K by default (it is the paper's point
  // that it is impractically slow); raise DLS_BENCH_SCALE to extend.
  const int lprr_k_cap = exp::bench_scale() >= 2.0 ? 40 : 30;

  std::cout << "# Figure 7: heuristic running time vs K (seconds, mean of " << reps
            << " platforms per K)\n"
            << "# paper expectation: G << LP-based; LPRR ~ K^2 LP solves above LPRG\n";

  TextTable table({"K", "G", "LPR", "LPRG", "LPRR", "LPRR_solves"});
  const platform::Table1Grid grid;
  for (const int k : {10, 20, 30, 40}) {
    Accumulator tg, tlpr, tlprg, tlprr;
    double lprr_solves = 0.0;
    int lprr_count = 0;
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng(seed + 7919ULL * k + rep);
      exp::CaseConfig config;
      config.params = exp::sample_grid_params(grid, k, rng);
      config.objective = core::Objective::MaxMin;
      config.seed = rng.next_u64();
      config.with_lprr = k <= lprr_k_cap;
      const exp::CaseResult r = exp::run_case(config);
      if (!r.ok) continue;
      tg.add(r.t_g.seconds);
      tlpr.add(r.t_lpr.seconds);
      tlprg.add(r.t_lprg.seconds);
      if (config.with_lprr) {
        tlprr.add(r.t_lprr.seconds);
        lprr_solves += r.t_lprr.lp_solves;
        ++lprr_count;
      }
    }
    table.add_row({std::to_string(k), TextTable::fmt(tg.mean(), 6),
                   TextTable::fmt(tlpr.mean(), 6), TextTable::fmt(tlprg.mean(), 6),
                   lprr_count > 0 ? TextTable::fmt(tlprr.mean(), 3) : "-",
                   lprr_count > 0
                       ? TextTable::fmt(lprr_solves / lprr_count, 0)
                       : "-"});
  }
  table.print(std::cout);
  return 0;
}
