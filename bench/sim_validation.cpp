// Extension experiment X2 (DESIGN.md): execute reconstructed periodic
// schedules on the flow-level simulator and verify the analytical
// steady-state is achievable.
//
//   * Paced execution (each flow throttled to its reserved rate, the
//     fluid schedule of §3.2) must never overrun the period and must
//     deliver the scheduled throughput exactly.
//   * Work-conserving max-min fair sharing (TCP-like) may overrun the
//     period: a flow capped by beta*pbw cannot catch up after losing
//     early fair-share rounds. The overrun distribution is the
//     experiment's finding — the analytical model implicitly assumes
//     rate control.
//
// The max-min runs execute on both simulation engines (engine.hpp): the
// pre-refactor full-pass-per-event Rescan loop and the incremental
// event-calendar engine, cross-checking their overruns and comparing the
// number of full progressive-filling passes each needs.
//
// Replications are independent and run in parallel (DLS_BENCH_JOBS
// workers). Besides the human-readable table, one machine-readable JSON
// object per K is printed on its own line (prefix "JSON "), carrying
// events/sec, rate-recomputation counts per engine, and wall time, so
// the perf trajectory can be tracked across PRs in BENCH_*.json files.
#include <cmath>
#include <ctime>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/schedule.hpp"
#include "exp/experiment.hpp"
#include "sim/simulator.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace {

/// Per-thread CPU time: immune to scheduling contention from sibling
/// replications, so the JSON events/sec metric does not depend on
/// DLS_BENCH_JOBS.
double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

struct RepResult {
  bool ok = false;
  double paced_overrun = 0.0;
  double maxmin_overrun = 0.0;
  double rescan_overrun = 0.0;
  double worst_deficit = 0.0;
  std::int64_t events = 0;              // incremental max-min run
  std::int64_t full_inc = 0;            // full solves, incremental engine
  std::int64_t partial_inc = 0;         // partial solves, incremental engine
  std::int64_t full_rescan = 0;         // full solves, rescan engine
  double overrun_gap = 0.0;             // |incremental - rescan| overrun
  double sim_seconds = 0.0;             // thread CPU s, incremental max-min run
};

RepResult run_rep(std::uint64_t seed, int k, int rep) {
  using namespace dls;
  RepResult out;
  Rng rng(seed + 49979687ULL * static_cast<std::uint64_t>(k) + rep);
  const platform::Table1Grid grid;
  platform::GeneratorParams params = exp::sample_grid_params(grid, k, rng);
  const platform::Platform plat = generate_platform(params, rng);
  const std::vector<double> payoffs(plat.num_clusters(), 1.0);
  const core::SteadyStateProblem problem(plat, payoffs, core::Objective::MaxMin);
  const auto h = core::run_lprg(problem);
  if (h.status != lp::SolveStatus::Optimal) return out;
  const auto sched = core::build_periodic_schedule(problem, h.allocation);

  sim::SimOptions paced;
  paced.periods = 4;
  paced.warmup_periods = 1;
  const auto paced_report = sim::simulate_schedule(problem, sched, paced);

  sim::SimOptions fair = paced;
  fair.policy = sim::SharingPolicy::MaxMin;
  const double cpu_before = thread_cpu_seconds();
  const auto fair_report = sim::simulate_schedule(problem, sched, fair);
  out.sim_seconds = thread_cpu_seconds() - cpu_before;

  sim::SimOptions rescan = fair;
  rescan.engine = sim::EngineKind::Rescan;
  const auto rescan_report = sim::simulate_schedule(problem, sched, rescan);

  out.ok = true;
  out.paced_overrun = paced_report.worst_overrun_ratio;
  out.maxmin_overrun = fair_report.worst_overrun_ratio;
  out.rescan_overrun = rescan_report.worst_overrun_ratio;
  // Counters compare the same workload on both engines: the max-min run.
  out.events = fair_report.events;
  out.full_inc = fair_report.rate_recomputations;
  out.partial_inc = fair_report.partial_recomputations;
  out.full_rescan = rescan_report.rate_recomputations;
  out.overrun_gap =
      std::abs(fair_report.worst_overrun_ratio - rescan_report.worst_overrun_ratio);
  for (int c = 0; c < plat.num_clusters(); ++c) {
    const double want = sched.throughput(c);
    if (want > 1e-9)
      out.worst_deficit = std::max(
          out.worst_deficit, (want - fair_report.throughput[c]) / want);
  }
  return out;
}

}  // namespace

int main() {
  using namespace dls;
  const std::uint64_t seed = exp::bench_seed();
  const int per_k = exp::scaled(6);

  std::cout << "# Simulator validation: periodic-schedule execution, paced vs max-min sharing\n"
            << "# expectation: paced overrun == 1.0 exactly; max-min overrun >= 1 with a tail\n"
            << "# engines: incremental (event calendar + delta re-solves) vs rescan reference\n";

  TextTable table({"K", "paced_overrun_max", "maxmin_overrun_mean", "maxmin_overrun_max",
                   "throughput_deficit_max", "full_solves_rescan", "full_solves_inc",
                   "solve_drop", "cases"});
  std::vector<std::string> json_lines;
  ThreadPool pool(static_cast<std::size_t>(exp::bench_jobs()));
  for (const int k : {5, 10, 20, 32}) {
    Accumulator paced_overrun, maxmin_overrun, deficit, engine_gap;
    std::int64_t events = 0, full_inc = 0, partial_inc = 0, full_rescan = 0;
    double sim_seconds = 0.0;
    int cases = 0;
    std::vector<RepResult> reps(per_k);
    WallTimer timer;
    parallel_for(pool, 0, reps.size(),
                 [&](std::size_t rep) {
                   reps[rep] = run_rep(seed, k, static_cast<int>(rep));
                 });
    const double wall = timer.seconds();
    for (const RepResult& r : reps) {
      if (!r.ok) continue;
      ++cases;
      paced_overrun.add(r.paced_overrun);
      maxmin_overrun.add(r.maxmin_overrun);
      deficit.add(r.worst_deficit);
      engine_gap.add(r.overrun_gap);
      events += r.events;
      full_inc += r.full_inc;
      partial_inc += r.partial_inc;
      full_rescan += r.full_rescan;
      sim_seconds += r.sim_seconds;
    }
    const double drop = full_inc > 0
                            ? static_cast<double>(full_rescan) /
                                  static_cast<double>(full_inc)
                            : 0.0;
    // Empty accumulators (every rep failed) have NaN extrema; table_cell
    // renders the placeholder and json_value keeps the JSON parseable.
    table.add_row({std::to_string(k),
                   table_cell(paced_overrun, paced_overrun.max(), 4),
                   table_cell(maxmin_overrun, maxmin_overrun.mean(), 4),
                   table_cell(maxmin_overrun, maxmin_overrun.max(), 4),
                   table_cell(deficit, deficit.max(), 4),
                   std::to_string(full_rescan), std::to_string(full_inc),
                   TextTable::fmt(drop, 1) + "x", std::to_string(cases)});

    std::ostringstream js;
    js.precision(6);
    // events_per_sec measures the incremental engine alone: summed
    // per-thread CPU time of the incremental max-min simulate_schedule
    // calls — not the sweep's wall clock, which is dominated by LP solves
    // and varies with the worker count.
    js << "{\"bench\":\"sim_validation\",\"k\":" << k << ",\"cases\":" << cases
       << ",\"events\":" << events << ",\"events_per_sec\":"
       << (sim_seconds > 0.0 ? static_cast<double>(events) / sim_seconds : 0.0)
       << ",\"sim_seconds\":" << sim_seconds
       << ",\"rate_recomputations_rescan\":" << full_rescan
       << ",\"rate_recomputations_incremental\":" << full_inc
       << ",\"partial_recomputations_incremental\":" << partial_inc
       << ",\"solve_reduction\":" << drop
       << ",\"max_engine_overrun_gap\":"
       << json_value(engine_gap, engine_gap.max(), 6)
       << ",\"wall_seconds\":" << wall << "}";
    json_lines.push_back(js.str());
  }
  table.print(std::cout);
  for (const std::string& line : json_lines) std::cout << "JSON " << line << "\n";
  return 0;
}
