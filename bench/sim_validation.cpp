// Extension experiment X2 (DESIGN.md): execute reconstructed periodic
// schedules on the flow-level simulator and verify the analytical
// steady-state is achievable.
//
//   * Paced execution (each flow throttled to its reserved rate, the
//     fluid schedule of §3.2) must never overrun the period and must
//     deliver the scheduled throughput exactly.
//   * Work-conserving max-min fair sharing (TCP-like) may overrun the
//     period: a flow capped by beta*pbw cannot catch up after losing
//     early fair-share rounds. The overrun distribution is the
//     experiment's finding — the analytical model implicitly assumes
//     rate control.
#include <iostream>
#include <string>

#include "core/schedule.hpp"
#include "exp/experiment.hpp"
#include "sim/simulator.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
  using namespace dls;
  const std::uint64_t seed = exp::bench_seed();
  const int per_k = exp::scaled(6);

  std::cout << "# Simulator validation: periodic-schedule execution, paced vs max-min sharing\n"
            << "# expectation: paced overrun == 1.0 exactly; max-min overrun >= 1 with a tail\n";

  TextTable table({"K", "paced_overrun_max", "maxmin_overrun_mean", "maxmin_overrun_max",
                   "throughput_deficit_max", "cases"});
  const platform::Table1Grid grid;
  for (const int k : {5, 10, 20}) {
    Accumulator paced_overrun, maxmin_overrun, deficit;
    int cases = 0;
    for (int rep = 0; rep < per_k; ++rep) {
      Rng rng(seed + 49979687ULL * k + rep);
      platform::GeneratorParams params = exp::sample_grid_params(grid, k, rng);
      const platform::Platform plat = generate_platform(params, rng);
      const std::vector<double> payoffs(plat.num_clusters(), 1.0);
      const core::SteadyStateProblem problem(plat, payoffs, core::Objective::MaxMin);
      const auto h = core::run_lprg(problem);
      if (h.status != lp::SolveStatus::Optimal) continue;
      const auto sched = core::build_periodic_schedule(problem, h.allocation);

      sim::SimOptions paced;
      paced.periods = 4;
      paced.warmup_periods = 1;
      const auto paced_report = sim::simulate_schedule(problem, sched, paced);

      sim::SimOptions fair = paced;
      fair.policy = sim::SharingPolicy::MaxMin;
      const auto fair_report = sim::simulate_schedule(problem, sched, fair);

      ++cases;
      paced_overrun.add(paced_report.worst_overrun_ratio);
      maxmin_overrun.add(fair_report.worst_overrun_ratio);
      for (int c = 0; c < plat.num_clusters(); ++c) {
        const double want = sched.throughput(c);
        if (want > 1e-9)
          deficit.add((want - fair_report.throughput[c]) / want);
      }
    }
    table.add_row({std::to_string(k), TextTable::fmt(paced_overrun.max(), 4),
                   TextTable::fmt(maxmin_overrun.mean(), 4),
                   TextTable::fmt(maxmin_overrun.max(), 4),
                   TextTable::fmt(deficit.max(), 4), std::to_string(cases)});
  }
  table.print(std::cout);
  return 0;
}
