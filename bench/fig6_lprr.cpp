// Figure 6 reproduction: LPRR versus G (MAXMIN and SUM, relative to LP)
// on a small set of topologies with K in {15, 20, 25} — the regime where
// the paper shows LPRG's MAXMIN gap and LPRR closing it to near the LP
// bound. Also reports the equal-probability rounding ablation (LPRR-EQ),
// which §6.2 notes performs much worse than probability-proportional
// rounding.
#include <iostream>
#include <string>

#include "exp/experiment.hpp"
#include "support/table.hpp"

int main() {
  using namespace dls;
  const std::uint64_t seed = exp::bench_seed();
  // The paper used 80 topologies across the K range; LPRR solves ~K^2 LPs
  // per topology, so the default here is smaller and DLS_BENCH_SCALE
  // grows it (scale ~7 reproduces the full 80).
  const int per_k = exp::scaled(6);

  std::cout << "# Figure 6: LPRR vs G (plus rounding ablations) relative to LP, K in {15,20,25} ("
            << per_k << " topologies per K)\n"
            << "# paper expectation: MAXMIN(LPRR) ~ LP >> MAXMIN(G); equal-probability\n"
            << "# rounding is survivable only thanks to the per-fix re-solve -- the\n"
            << "# one-shot columns show the degradation the paper attributes to it\n";

  TextTable table({"K", "MAXMIN(LPRR)/LP", "MAXMIN(LPRG)/LP", "MAXMIN(G)/LP",
                   "MAXMIN(LPRR_EQ)/LP", "MAXMIN(1SHOT)/LP", "MAXMIN(1SHOT_EQ)/LP",
                   "SUM(LPRR)/LP", "SUM(G)/LP", "cases"});
  const platform::Table1Grid grid;
  for (const int k : {15, 20, 25}) {
    exp::RatioAccumulator mm_lprr, mm_lprg, mm_g, mm_eq, mm_1s, mm_1seq, sum_lprr, sum_g;
    int cases = 0;
    for (int rep = 0; rep < per_k; ++rep) {
      Rng rng(seed + 15485863ULL * k + rep);
      exp::CaseConfig config;
      config.params = exp::sample_grid_params(grid, k, rng);
      config.seed = rng.next_u64();
      config.with_lprr = true;
      config.with_lprr_eq = true;
      config.with_lprr_oneshot = true;

      config.objective = core::Objective::MaxMin;
      const exp::CaseResult mm = exp::run_case(config);
      config.with_lprr_eq = false;  // ablations only needed for MAXMIN
      config.with_lprr_oneshot = false;
      config.objective = core::Objective::Sum;
      const exp::CaseResult sum = exp::run_case(config);
      if (!mm.ok || !sum.ok) continue;
      ++cases;
      mm_lprr.add(mm.lprr, mm.lp);
      mm_lprg.add(mm.lprg, mm.lp);
      mm_g.add(mm.g, mm.lp);
      mm_eq.add(mm.lprr_eq, mm.lp);
      mm_1s.add(mm.lprr_1shot, mm.lp);
      mm_1seq.add(mm.lprr_1shot_eq, mm.lp);
      sum_lprr.add(sum.lprr, sum.lp);
      sum_g.add(sum.g, sum.lp);
    }
    table.add_row({std::to_string(k), TextTable::fmt(mm_lprr.mean(), 4),
                   TextTable::fmt(mm_lprg.mean(), 4), TextTable::fmt(mm_g.mean(), 4),
                   TextTable::fmt(mm_eq.mean(), 4), TextTable::fmt(mm_1s.mean(), 4),
                   TextTable::fmt(mm_1seq.mean(), 4), TextTable::fmt(sum_lprr.mean(), 4),
                   TextTable::fmt(sum_g.mean(), 4), std::to_string(cases)});
  }
  table.print(std::cout);
  return 0;
}
