// Online workload engine benchmark: dynamic arrivals with adaptive
// warm-started rescheduling (src/online/, ISSUE 2).
//
// Two questions per platform size K:
//
//   1. Raw event throughput: how many Poisson arrivals per second can
//      the lifecycle engine absorb end to end (greedy rescheduling, the
//      production-path method for large K)?
//   2. What does the simplex warm start buy? The same workload is
//      replayed twice with LP-based rescheduling (LPR: one relaxation
//      solve per event) — once with WarmPolicy::Auto (basis capsule
//      carried across events, departures repaired by the composite
//      bound phase 1) and once with WarmPolicy::Never (every event
//      cold-solves). The headline metric is
//          warm_cold_ratio = mean warm reschedule time (auto run)
//                          / mean cold reschedule time (never run),
//      expected well below 0.5 for K >= 16. Both runs reach the same LP
//      relaxation value per event (LP optimality); LPR's rounded
//      allocations may differ on degenerate optima, so the two replays
//      are statistically equivalent rather than bit-identical.
//
// One machine-readable JSON object per K is printed on its own line
// (prefix "JSON "), mirroring bench_sim_validation; CI collects these
// into BENCH_online.json at the repo root.
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/experiment.hpp"
#include "online/engine.hpp"
#include "platform/generator.hpp"
#include "support/timer.hpp"

namespace {

dls::platform::Platform make_platform(int k, std::uint64_t seed) {
  dls::platform::GeneratorParams params;
  params.num_clusters = k;
  params.ensure_connected = true;
  dls::Rng rng(seed + 7919 * static_cast<std::uint64_t>(k));
  return generate_platform(params, rng);
}

dls::online::Workload make_workload(int k, int count, std::uint64_t seed) {
  dls::online::PoissonParams p;
  p.count = count;
  p.rate = 4.0;
  p.mean_load = 900.0;
  dls::Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  return poisson_workload(p, k, rng);
}

}  // namespace

int main() {
  using namespace dls;
  const std::uint64_t seed = exp::bench_seed();

  std::cout << "# Online workload engine: arrivals/sec and warm-vs-cold reschedule time\n"
            << "# greedy run sizes the event loop; LPR auto-vs-never isolates the\n"
            << "# simplex warm-start capsule (same objectives by LP optimality)\n";

  std::vector<std::string> json_lines;
  for (const int k : {8, 16, 32}) {
    // 1. Event throughput with greedy rescheduling.
    const int greedy_arrivals = exp::scaled(4000);
    const online::Workload big = make_workload(k, greedy_arrivals, seed);
    const platform::Platform plat = make_platform(k, seed);
    online::OnlineOptions greedy_options;
    greedy_options.sched.method = online::Method::Greedy;
    greedy_options.sched.objective = core::Objective::MaxMin;
    WallTimer greedy_timer;
    const online::OnlineReport greedy_report =
        online::OnlineEngine(plat, greedy_options).run(big);
    const double greedy_wall = greedy_timer.seconds();

    // 2. Warm vs cold LP rescheduling on a smaller replay.
    const int lp_arrivals = exp::scaled(400);
    const online::Workload small = make_workload(k, lp_arrivals, seed + 1);
    online::OnlineOptions lp_options;
    lp_options.sched.method = online::Method::Lpr;
    lp_options.sched.objective = core::Objective::Sum;
    lp_options.sched.warm = online::WarmPolicy::Auto;
    const online::OnlineReport warm_report =
        online::OnlineEngine(plat, lp_options).run(small);
    lp_options.sched.warm = online::WarmPolicy::Never;
    const online::OnlineReport cold_report =
        online::OnlineEngine(plat, lp_options).run(small);

    const double warm_ms = warm_report.warm_solves > 0
                               ? 1e3 * warm_report.warm_seconds /
                                     warm_report.warm_solves
                               : 0.0;
    const double cold_ms = cold_report.cold_solves > 0
                               ? 1e3 * cold_report.cold_seconds /
                                     cold_report.cold_solves
                               : 0.0;
    const double ratio = cold_ms > 0.0 ? warm_ms / cold_ms : 0.0;

    std::cout << "K=" << k << ": " << greedy_report.arrivals << " arrivals, "
              << greedy_report.reschedules << " reschedules, "
              << static_cast<std::int64_t>(greedy_report.arrivals / greedy_wall)
              << " arrivals/sec (greedy); LPR warm " << warm_ms
              << " ms vs cold " << cold_ms << " ms per reschedule (ratio "
              << ratio << ", " << warm_report.warm_solves << "/"
              << warm_report.reschedules << " warm)\n";

    std::ostringstream js;
    js.precision(6);
    js << "{\"bench\":\"online\",\"k\":" << k
       << ",\"arrivals\":" << greedy_report.arrivals
       << ",\"completed\":" << greedy_report.completed
       << ",\"reschedules\":" << greedy_report.reschedules
       << ",\"arrivals_per_sec\":"
       << static_cast<double>(greedy_report.arrivals) / greedy_wall
       << ",\"greedy_wall_seconds\":" << greedy_wall
       << ",\"mean_utilization\":"
       << greedy_report.metrics.utilization.mean()
       << ",\"mean_response\":" << greedy_report.metrics.response.mean()
       << ",\"lp_arrivals\":" << warm_report.arrivals
       << ",\"lp_reschedules\":" << warm_report.reschedules
       << ",\"warm_solves\":" << warm_report.warm_solves
       << ",\"warm_mean_ms\":" << warm_ms
       << ",\"cold_solves\":" << cold_report.cold_solves
       << ",\"cold_mean_ms\":" << cold_ms
       << ",\"warm_cold_ratio\":" << ratio << "}";
    json_lines.push_back(js.str());
  }
  for (const std::string& line : json_lines) std::cout << "JSON " << line << "\n";
  return 0;
}
