// Distributed-execution bench: the committed example campaign run
// single-process vs through the src/dist coordinator with a loopback
// worker fleet (in-process threads, real sockets). Two questions:
//
//   * what does distribution cost on one machine? The coordinator adds
//     frame encoding, TCP hops and the ordered re-fold, so a loopback
//     fleet should land near the single-process time (the win is
//     fleet scale-out across machines, which a one-host bench cannot
//     show) — overhead_ratio records the price;
//   * is the tentpole invariant intact under load? The bench asserts
//     the distributed report is BYTE-identical to the single-process
//     one before printing anything.
//
// DLS_BENCH_SCALE scales the spec's replication count, DLS_BENCH_JOBS
// the per-side thread count. One JSON line (prefix "JSON ") lands in
// BENCH_dist.json via CI.
#include <cstdlib>
#include <future>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "dist/coordinator.hpp"
#include "dist/worker.hpp"
#include "exp/experiment.hpp"
#include "support/timer.hpp"

namespace {

std::string report_json(const dls::campaign::CampaignReport& report) {
  std::ostringstream os;
  dls::campaign::write_report_json(report, os);
  return os.str();
}

}  // namespace

int main() {
  using namespace dls;
  campaign::ScenarioSpec spec = campaign::read_campaign_file(
      {"data/example.campaign", "../data/example.campaign"});
  spec.replications = exp::scaled(4 * spec.replications);
  const int jobs = exp::bench_jobs() == 0 ? 2 : exp::bench_jobs();
  constexpr std::size_t kWorkers = 2;

  std::cout << "# Distributed campaign loopback: coordinator + "
            << kWorkers << " in-process workers vs single process\n"
            << "# spec: " << spec.name << ", " << spec.replications
            << " replications, " << jobs << " thread(s) per side\n";

  WallTimer single_timer;
  const campaign::CampaignReport single =
      campaign::run_campaign(spec, {.jobs = jobs});
  const double single_seconds = single_timer.seconds();
  const std::string reference = report_json(single);

  auto port_promise = std::make_shared<std::promise<std::uint16_t>>();
  std::shared_future<std::uint16_t> port = port_promise->get_future().share();
  dist::CoordinatorOptions copt;
  copt.range_size = 8;
  copt.on_listen = [port_promise](std::uint16_t p) {
    port_promise->set_value(p);
  };

  WallTimer dist_timer;
  std::vector<std::thread> fleet;
  for (std::size_t i = 0; i < kWorkers; ++i) {
    fleet.emplace_back([&port, jobs] {
      dist::WorkerOptions wopt;
      wopt.host = "127.0.0.1";
      wopt.port = port.get();
      wopt.jobs = jobs;
      (void)dist::run_worker(wopt);
    });
  }
  const dist::CoordinatorResult distributed = dist::serve_campaign(spec, copt);
  for (std::thread& t : fleet) t.join();
  const double dist_seconds = dist_timer.seconds();

  const bool identical = report_json(distributed.report) == reference;
  if (!identical || !distributed.complete) {
    std::cerr << "FATAL: distributed report diverged from the "
                 "single-process reference\n";
    return 1;
  }

  const double overhead =
      single_seconds > 0.0 ? dist_seconds / single_seconds : 0.0;
  std::cout << "single-process: " << single_seconds << "s for "
            << single.total_cases << " cases\n"
            << "distributed:    " << dist_seconds << "s ("
            << distributed.workers_seen << " workers, overhead "
            << overhead << "x), byte-identical report\n";

  std::ostringstream js;
  js.precision(6);
  js << "{\"bench\":\"dist_loopback\",\"cases\":" << single.total_cases
     << ",\"workers\":" << kWorkers << ",\"jobs_per_side\":" << jobs
     << ",\"single_seconds\":" << single_seconds
     << ",\"distributed_seconds\":" << dist_seconds
     << ",\"overhead_ratio\":" << overhead
     << ",\"identical\":1}";
  std::cout << "JSON " << js.str() << "\n";
  return 0;
}
