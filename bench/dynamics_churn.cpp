// Platform-dynamics benchmark (src/dynamics/, ISSUE 4). Two questions
// per platform size K:
//
//   1. Incremental route-cache maintenance: a bandwidth event refreshes
//      only the pairs routed through the touched link (Platform's
//      per-link incidence), while the pre-dynamics strategy rebuilds
//      every route and metric from scratch. Both paths replay the same
//      capacity-event sequence; the end states are checked identical
//      over all K^2 pairs, and the headline is
//          cache_speedup = full_rebuild_seconds / incremental_seconds,
//      expected >> 1 from K = 64 up (gated in CI).
//
//   2. Churn-aware warm re-solves: after each capacity event the
//      adaptive rescheduler re-solves the steady state. The warm
//      replica carries its simplex capsule across the event — restored
//      whole when only rhs/bounds moved, basis-repaired when the event
//      re-priced matrix coefficients (lp::SimplexOptions::warm_repair)
//      — while the cold replica re-solves from scratch. Both reach the
//      same LP optimum (asserted); the headline is
//          warm_cold_ratio = mean warm ms / mean cold ms,
//      expected well below 1 for K >= 64 (gated in CI).
//
//   3. Churn-degradation campaign: the committed declarative spec
//      data/dynamics_churn.campaign replays the same Poisson stream
//      against the static platform and against a generated
//      failure/drift/churn trace through the campaign runner, and the
//      response/slowdown degradation is read off the two aggregation
//      groups.
//
// One machine-readable JSON object per K is printed on its own line
// (prefix "JSON "), mirroring the other bench drivers; CI collects
// these into BENCH_dynamics.json at the repo root (the campaign row is
// tagged "dynamics_campaign" so the K-gated assertions skip it).
#include <cmath>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "dynamics/dynamic_platform.hpp"
#include "exp/experiment.hpp"
#include "online/rescheduler.hpp"
#include "platform/generator.hpp"
#include "support/timer.hpp"

namespace {

dls::platform::Platform make_platform(int k, std::uint64_t seed) {
  dls::platform::GeneratorParams params;
  params.num_clusters = k;
  params.ensure_connected = true;
  params.num_transit_routers = k / 4;  // longer routes stress the caches
  dls::Rng rng(seed + 7919 * static_cast<std::uint64_t>(k));
  return generate_platform(params, rng);
}

/// Deterministic capacity-event sequence: link i (cyclic) rescaled to
/// factor alternating below/above its base bandwidth.
struct BwEvent {
  dls::platform::LinkId link;
  double bw;
};

std::vector<BwEvent> make_bw_events(const dls::platform::Platform& plat,
                                    int count, dls::Rng& rng) {
  std::vector<BwEvent> events;
  events.reserve(count);
  for (int i = 0; i < count; ++i) {
    const auto link =
        static_cast<dls::platform::LinkId>(rng.index(plat.num_links()));
    const double factor = rng.uniform(0.4, 1.6);
    events.push_back({link, plat.link(link).bw * factor});
  }
  return events;
}

}  // namespace

int main() {
  using namespace dls;
  const std::uint64_t seed = exp::bench_seed();

  std::cout << "# Platform dynamics: incremental pbw-cache updates vs full "
               "recompute,\n"
            << "# and warm/repaired vs cold re-solves across capacity events\n";

  std::vector<std::string> json_lines;
  for (const int k : {16, 64, 256}) {
    const platform::Platform base = make_platform(k, seed);
    Rng rng(seed ^ 0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(k));

    // ---- 1. incremental cache update vs rebuild-from-scratch oracle ----
    const int cache_events = exp::scaled(k >= 256 ? 40 : 120);
    const std::vector<BwEvent> events = make_bw_events(base, cache_events, rng);

    platform::Platform incremental = base;
    WallTimer inc_timer;
    for (const BwEvent& e : events)
      incremental.set_link_bandwidth(e.link, e.bw);
    const double inc_seconds = inc_timer.seconds();

    platform::Platform rebuilt = base;
    double full_seconds = 0.0;
    for (const BwEvent& e : events) {
      rebuilt.set_link_bandwidth(e.link, e.bw);
      // Time only the full recompute itself: the oracle strategy's cost
      // is the rebuild, not the (incremental) bandwidth store.
      WallTimer full_timer;
      rebuilt.compute_shortest_path_routes();
      full_seconds += full_timer.seconds();
    }

    // End states must agree over every pair (same topology, same BFS).
    bool caches_match = true;
    for (int a = 0; a < k && caches_match; ++a) {
      for (int b = 0; b < k; ++b) {
        if (incremental.has_route(a, b) != rebuilt.has_route(a, b)) {
          caches_match = false;
          break;
        }
        if (!incremental.has_route(a, b)) continue;
        if (incremental.route_bottleneck_bw(a, b) !=
            rebuilt.route_bottleneck_bw(a, b)) {
          caches_match = false;
          break;
        }
      }
    }
    if (!caches_match) {
      std::cerr << "FATAL: incremental cache diverged from the rebuild oracle "
                   "at K="
                << k << "\n";
      return 1;
    }
    const double cache_speedup =
        inc_seconds > 0.0 ? full_seconds / inc_seconds : 0.0;

    // ---- 2. warm/repaired vs cold re-solves under capacity churn ----
    const int resolve_events = exp::scaled(k >= 256 ? 8 : (k >= 64 ? 24 : 48));
    const std::vector<BwEvent> churn = make_bw_events(base, resolve_events, rng);
    const std::vector<double> payoffs(k, 1.0);

    online::ReschedulerOptions opt;
    opt.method = online::Method::LpBound;
    opt.objective = core::Objective::Sum;
    online::ReschedulerOptions cold_opt = opt;
    cold_opt.warm = online::WarmPolicy::Never;

    dynamics::DynamicPlatform dyn(base);
    online::AdaptiveRescheduler warm_sched(dyn.plat(), opt);
    online::AdaptiveRescheduler cold_sched(dyn.plat(), cold_opt);
    // Prime both replicas. The warm side's priming solve lands in its
    // *cold* stats bucket (first solve has no capsule) so its warm mean
    // is per-event by construction; the cold side's priming solve is
    // snapshot here and subtracted so its mean is per-event too.
    (void)warm_sched.reschedule(payoffs);
    (void)cold_sched.reschedule(payoffs);
    const online::AdaptiveRescheduler::Stats cold_prime = cold_sched.stats();

    double objective_gap = 0.0;
    for (const BwEvent& e : churn) {
      dyn.apply({0.0, dynamics::EventKind::LinkBandwidth, e.link, e.bw});
      warm_sched.platform_capacity_changed();
      cold_sched.platform_capacity_changed();
      const online::Reschedule w = warm_sched.reschedule(payoffs);
      const online::Reschedule c = cold_sched.reschedule(payoffs);
      objective_gap = std::max(
          objective_gap, std::fabs(w.objective - c.objective) /
                             std::max(1.0, std::fabs(c.objective)));
    }
    if (objective_gap > 1e-6) {
      std::cerr << "FATAL: warm re-solve diverged from cold optimum at K=" << k
                << " (relative gap " << objective_gap << ")\n";
      return 1;
    }

    const auto& ws = warm_sched.stats();
    const auto& cs = cold_sched.stats();
    const int cold_events = cs.cold_solves - cold_prime.cold_solves;
    const double cold_event_seconds = cs.cold_seconds - cold_prime.cold_seconds;
    const double warm_ms =
        ws.warm_solves > 0 ? 1e3 * ws.warm_seconds / ws.warm_solves : 0.0;
    const double cold_ms =
        cold_events > 0 ? 1e3 * cold_event_seconds / cold_events : 0.0;
    const double ratio = cold_ms > 0.0 ? warm_ms / cold_ms : 0.0;

    std::cout << "K=" << k << ": " << cache_events << " capacity events, cache "
              << 1e3 * inc_seconds << " ms incremental vs " << 1e3 * full_seconds
              << " ms full rebuild (speedup " << cache_speedup << "x); "
              << resolve_events << " re-solves, " << warm_ms << " ms warm ("
              << ws.repaired_solves << " repaired) vs " << cold_ms
              << " ms cold (ratio " << ratio << ")\n";

    std::ostringstream js;
    js.precision(6);
    js << "{\"bench\":\"dynamics\",\"k\":" << k
       << ",\"links\":" << base.num_links()
       << ",\"cache_events\":" << cache_events
       << ",\"incremental_seconds\":" << inc_seconds
       << ",\"full_seconds\":" << full_seconds
       << ",\"cache_speedup\":" << cache_speedup
       << ",\"resolve_events\":" << resolve_events
       << ",\"warm_solves\":" << ws.warm_solves
       << ",\"repaired_solves\":" << ws.repaired_solves
       << ",\"warm_mean_ms\":" << warm_ms
       << ",\"cold_solves\":" << cold_events
       << ",\"cold_mean_ms\":" << cold_ms
       << ",\"warm_cold_ratio\":" << ratio
       << ",\"objective_gap\":" << objective_gap << "}";
    json_lines.push_back(js.str());
  }
  // ---- 3. churn-degradation campaign from the committed spec ----
  {
    campaign::ScenarioSpec spec = campaign::read_campaign_file(
        {"data/dynamics_churn.campaign", "../data/dynamics_churn.campaign"});
    spec.replications = exp::scaled(spec.replications);

    campaign::RunnerOptions options;
    options.jobs = exp::bench_jobs();
    const campaign::CampaignReport report = campaign::run_campaign(spec, options);

    const auto group_mean = [&](const std::string& scenario,
                                const std::string& metric) {
      return campaign::group_metric_mean(report, scenario, metric);
    };
    const auto ratio = [](double dyn, double base) {
      return base > 0.0 ? dyn / base : 0.0;
    };
    const double response_degradation =
        ratio(group_mean("dynamic", "mean_response"),
              group_mean("static", "mean_response"));
    const double slowdown_degradation =
        ratio(group_mean("dynamic", "mean_slowdown"),
              group_mean("static", "mean_slowdown"));

    std::cout << "campaign '" << spec.name << "': " << report.total_cases
              << " cases (" << spec.replications
              << " replications), response degradation x"
              << response_degradation << ", slowdown x" << slowdown_degradation
              << "\n";

    std::ostringstream js;
    js.precision(6);
    js << "{\"bench\":\"dynamics_campaign\",\"cases\":" << report.total_cases
       << ",\"replications\":" << spec.replications
       << ",\"static_mean_response\":" << group_mean("static", "mean_response")
       << ",\"dynamic_mean_response\":" << group_mean("dynamic", "mean_response")
       << ",\"response_degradation\":" << response_degradation
       << ",\"slowdown_degradation\":" << slowdown_degradation
       << ",\"dynamic_completed\":" << group_mean("dynamic", "completed")
       << ",\"dynamic_aborted\":" << group_mean("dynamic", "aborted") << "}";
    json_lines.push_back(js.str());
  }

  for (const std::string& line : json_lines) std::cout << "JSON " << line << "\n";
  return 0;
}
