// ServeEngine: the incremental twin of OnlineEngine::run_multi. The
// load-bearing assertion is the cross-check — replaying a workload
// through arrive()/advance_to() yields BIT-identical per-app records to
// the batch engine — plus admission control and churn semantics the
// batch engine does not have.
#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "online/engine.hpp"
#include "online/workload.hpp"
#include "platform/generator.hpp"
#include "support/error.hpp"

namespace dls::serve {
namespace {

platform::Platform test_platform(int k, std::uint64_t seed) {
  platform::GeneratorParams params;
  params.num_clusters = k;
  params.ensure_connected = true;
  Rng rng(seed);
  return generate_platform(params, rng);
}

online::Workload poisson(int k, int count, std::uint64_t seed,
                         double rate = 2.0) {
  online::PoissonParams p;
  p.count = count;
  p.rate = rate;
  Rng rng(seed);
  return online::poisson_workload(p, k, rng);
}

/// Feeds a workload through a ServeEngine the way the daemon's replay
/// pump does: every arrival at its exact time, then drain to the end.
void replay(ServeEngine& engine, const online::Workload& wl) {
  for (const online::AppArrival& a : wl.arrivals)
    (void)engine.arrive(a.time, a.cluster, a.payoff, a.load, a.name);
  while (std::isfinite(engine.next_completion()))
    engine.advance_to(engine.next_completion());
}

TEST(ServeEngine, MatchesRunMultiBitExactly) {
  const platform::Platform plat = test_platform(5, 3);
  const online::Workload wl = poisson(5, 60, 7, 3.0);

  online::OnlineOptions batch_options;
  batch_options.multi_load = true;
  const online::OnlineEngine batch(plat, batch_options);
  const online::OnlineReport want = batch.run(wl, {});

  ServeEngine engine(plat, {});
  replay(engine, wl);

  const EngineCounters& c = engine.counters();
  EXPECT_EQ(c.admitted, static_cast<std::uint64_t>(want.arrivals));
  EXPECT_EQ(c.completed, static_cast<std::uint64_t>(want.completed));
  EXPECT_EQ(c.reschedules, static_cast<std::uint64_t>(want.reschedules));
  EXPECT_EQ(c.warm_solves, static_cast<std::uint64_t>(want.warm_solves));
  EXPECT_EQ(c.cold_solves, static_cast<std::uint64_t>(want.cold_solves));
  EXPECT_EQ(c.peak_active, want.peak_active);

  ASSERT_EQ(engine.apps().size(), want.apps.size());
  for (std::size_t i = 0; i < want.apps.size(); ++i) {
    const online::AppRecord& got = engine.apps()[i];
    EXPECT_EQ(got.admit, want.apps[i].admit);        // bit-exact
    EXPECT_EQ(got.depart, want.apps[i].depart);      // bit-exact
    EXPECT_EQ(got.slowdown, want.apps[i].slowdown);  // bit-exact
    EXPECT_EQ(got.outcome, want.apps[i].outcome);
  }
  EXPECT_EQ(engine.metrics().response.mean(), want.metrics.response.mean());
  EXPECT_EQ(engine.metrics().utilization.mean(),
            want.metrics.utilization.mean());
}

TEST(ServeEngine, DeterministicAcrossRuns) {
  const platform::Platform plat = test_platform(6, 11);
  const online::Workload wl = poisson(6, 80, 13, 4.0);
  EngineCounters a, b;
  double depart_sum_a = 0.0, depart_sum_b = 0.0;
  {
    ServeEngine engine(plat, {});
    replay(engine, wl);
    a = engine.counters();
    for (const online::AppRecord& r : engine.apps()) depart_sum_a += r.depart;
  }
  {
    ServeEngine engine(plat, {});
    replay(engine, wl);
    b = engine.counters();
    for (const online::AppRecord& r : engine.apps()) depart_sum_b += r.depart;
  }
  EXPECT_EQ(a.reschedules, b.reschedules);
  EXPECT_EQ(a.warm_solves, b.warm_solves);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(depart_sum_a, depart_sum_b);  // bit-exact
}

TEST(ServeEngine, MaxLoadsBudgetRejectsOverload) {
  const platform::Platform plat = test_platform(4, 5);
  EngineOptions options;
  options.max_loads = 2;
  ServeEngine engine(plat, options);
  EXPECT_EQ(engine.arrive(0.0, 0, 1.0, 1e5).admit, Admit::Admitted);
  EXPECT_EQ(engine.arrive(0.1, 1, 1.0, 1e5).admit, Admit::Admitted);
  const ServeEngine::ArriveResult r = engine.arrive(0.2, 2, 1.0, 1e5);
  EXPECT_EQ(r.admit, Admit::RejectedOverload);
  EXPECT_EQ(r.id, -1);
  EXPECT_EQ(engine.active_count(), 2);
  EXPECT_EQ(engine.counters().rejected_overload, 1u);
  // A departure frees a seat.
  EXPECT_TRUE(engine.depart(0.3, 0));
  EXPECT_EQ(engine.arrive(0.4, 2, 1.0, 1e5).admit, Admit::Admitted);
}

TEST(ServeEngine, DrainingRejectsArrivalsButFinishesActiveLoads) {
  const platform::Platform plat = test_platform(4, 5);
  ServeEngine engine(plat, {});
  const int id = engine.arrive(0.0, 0, 1.0, 1000.0).id;
  ASSERT_GE(id, 0);
  engine.begin_drain();
  EXPECT_EQ(engine.arrive(1.0, 1, 1.0, 1000.0).admit, Admit::RejectedDraining);
  EXPECT_EQ(engine.counters().rejected_draining, 1u);
  const double t_done = engine.next_completion();
  ASSERT_TRUE(std::isfinite(t_done));
  engine.advance_to(t_done);
  EXPECT_EQ(engine.active_count(), 0);
  EXPECT_EQ(engine.counters().completed, 1u);
}

TEST(ServeEngine, ClusterChurnAbortsAndRejects) {
  const platform::Platform plat = test_platform(4, 5);
  ServeEngine engine(plat, {});
  (void)engine.arrive(0.0, 0, 1.0, 1e6);
  (void)engine.arrive(0.0, 1, 1.0, 1e6);

  dynamics::PlatformEvent leave;
  leave.time = 1.0;
  leave.kind = dynamics::EventKind::ClusterLeave;
  leave.target = 0;
  engine.apply_event(1.0, leave);
  EXPECT_EQ(engine.counters().aborted_churn, 1u);
  EXPECT_EQ(engine.active_count(), 1);
  EXPECT_EQ(engine.apps()[0].outcome, online::AppOutcome::AbortedChurn);

  // Arrivals homed on the missing cluster are rejected, not queued.
  EXPECT_EQ(engine.arrive(2.0, 0, 1.0, 1000.0).admit, Admit::RejectedAbsent);
  EXPECT_EQ(engine.counters().rejected_absent, 1u);

  dynamics::PlatformEvent join;
  join.time = 3.0;
  join.kind = dynamics::EventKind::ClusterJoin;
  join.target = 0;
  engine.apply_event(3.0, join);
  EXPECT_EQ(engine.arrive(4.0, 0, 1.0, 1000.0).admit, Admit::Admitted);
}

TEST(ServeEngine, CancelledLoadsLeaveTheSchedule) {
  const platform::Platform plat = test_platform(4, 9);
  ServeEngine engine(plat, {});
  const int a = engine.arrive(0.0, 0, 1.0, 1e6).id;
  const int b = engine.arrive(0.0, 1, 1.0, 1000.0).id;
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  EXPECT_TRUE(engine.depart(0.5, a));
  EXPECT_FALSE(engine.depart(0.6, a));  // already gone
  EXPECT_EQ(engine.apps()[static_cast<std::size_t>(a)].outcome,
            online::AppOutcome::Cancelled);
  engine.advance_to(engine.next_completion());
  EXPECT_EQ(engine.counters().completed, 1u);
  EXPECT_EQ(engine.counters().cancelled, 1u);
  EXPECT_EQ(engine.apps()[static_cast<std::size_t>(b)].outcome,
            online::AppOutcome::Completed);
}

TEST(ServeEngine, RejectsInvalidArguments) {
  const platform::Platform plat = test_platform(3, 1);
  ServeEngine engine(plat, {});
  EXPECT_THROW((void)engine.arrive(0.0, -1, 1.0, 100.0), Error);
  EXPECT_THROW((void)engine.arrive(0.0, 99, 1.0, 100.0), Error);
  EXPECT_THROW((void)engine.arrive(0.0, 0, 0.0, 100.0), Error);
  EXPECT_THROW((void)engine.arrive(0.0, 0, 1.0, 0.0), Error);
}

}  // namespace
}  // namespace dls::serve
