// Request parsing for the serve daemon's dual protocol: HTTP sniffing,
// incremental/pipelined parsing, size bounds, and target splitting.
#include "serve/http.hpp"

#include <gtest/gtest.h>

namespace dls::serve {
namespace {

TEST(ServeHttp, TruncatedInputIsIncomplete) {
  EXPECT_EQ(parse_request("").kind, Request::Kind::Incomplete);
  EXPECT_EQ(parse_request("GET /met").kind, Request::Kind::Incomplete);
  // A full request line but no blank line yet: still incomplete.
  EXPECT_EQ(parse_request("GET /metrics HTTP/1.1\r\nHost: x\r\n").kind,
            Request::Kind::Incomplete);
  EXPECT_EQ(parse_request("arrive 2 1.0 500").kind, Request::Kind::Incomplete);
}

TEST(ServeHttp, ParsesHttpRequests) {
  const Request r =
      parse_request("GET /metrics HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n");
  ASSERT_EQ(r.kind, Request::Kind::Http);
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.target, "/metrics");
  EXPECT_EQ(r.consumed, 47u);

  const Request bare = parse_request("GET /health HTTP/1.0\n\n");
  ASSERT_EQ(bare.kind, Request::Kind::Http);
  EXPECT_EQ(bare.target, "/health");
  EXPECT_EQ(bare.consumed, 22u);
}

TEST(ServeHttp, ParsesLineCommands) {
  const Request r = parse_request("arrive 2 1.5 4000 app0\nnext");
  ASSERT_EQ(r.kind, Request::Kind::Line);
  EXPECT_EQ(r.line, "arrive 2 1.5 4000 app0");
  EXPECT_EQ(r.consumed, 23u);  // up to and including the newline

  const Request crlf = parse_request("stats\r\n");
  ASSERT_EQ(crlf.kind, Request::Kind::Line);
  EXPECT_EQ(crlf.line, "stats");
  EXPECT_EQ(crlf.consumed, 7u);
}

TEST(ServeHttp, PipelinedRequestsParseOneAtATime) {
  const std::string input = "ping\nstats\nquit\n";
  std::size_t off = 0;
  std::vector<std::string> lines;
  while (off < input.size()) {
    const Request r = parse_request(std::string_view(input).substr(off));
    ASSERT_EQ(r.kind, Request::Kind::Line);
    lines.push_back(r.line);
    off += r.consumed;
  }
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "ping");
  EXPECT_EQ(lines[1], "stats");
  EXPECT_EQ(lines[2], "quit");

  // An HTTP request followed by more bytes consumes only itself.
  const std::string two = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
  const Request first = parse_request(two);
  ASSERT_EQ(first.kind, Request::Kind::Http);
  EXPECT_EQ(first.target, "/a");
  const Request second =
      parse_request(std::string_view(two).substr(first.consumed));
  ASSERT_EQ(second.kind, Request::Kind::Http);
  EXPECT_EQ(second.target, "/b");
  EXPECT_EQ(first.consumed + second.consumed, two.size());
}

TEST(ServeHttp, OversizedRequestsAreErrors) {
  const std::string long_line(9000, 'x');
  EXPECT_EQ(parse_request(long_line).kind, Request::Kind::Error);
  std::string headers = "GET /metrics HTTP/1.1\r\n";
  headers += "X-Filler: " + std::string(9000, 'y') + "\r\n\r\n";
  EXPECT_EQ(parse_request(headers).kind, Request::Kind::Error);
  // A small bound rejects even a modest request.
  EXPECT_EQ(parse_request("stats going long\n", 4).kind, Request::Kind::Error);
}

TEST(ServeHttp, MalformedHttpRequestLinesAreErrors) {
  EXPECT_EQ(parse_request("GET\r\n\r\n").kind, Request::Kind::Error);
  EXPECT_EQ(parse_request("GET /x\r\n\r\n").kind, Request::Kind::Error);
  EXPECT_EQ(parse_request("GET /x FTP/1.0\r\n\r\n").kind, Request::Kind::Error);
}

TEST(ServeHttp, SplitTargetParsesQueries) {
  std::map<std::string, std::string> q;
  EXPECT_EQ(split_target("/metrics", q), "/metrics");
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(split_target("/arrive?cluster=2&load=4e3&name=my+app", q),
            "/arrive");
  EXPECT_EQ(q.at("cluster"), "2");
  EXPECT_EQ(q.at("load"), "4e3");
  EXPECT_EQ(q.at("name"), "my app");
}

TEST(ServeHttp, ResponseCarriesLengthAndClose) {
  const std::string r = http_response(200, "OK", "text/plain", "hello");
  EXPECT_EQ(r.find("HTTP/1.1 200 OK\r\n"), 0u);
  EXPECT_NE(r.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(r.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(r.find("\r\n\r\nhello"), std::string::npos);
}

}  // namespace
}  // namespace dls::serve
