// Shard-and-fold metrics registry: handle semantics, thread folding,
// capacity limits, the enable gate, both exporters, and the trace ring.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "support/error.hpp"

namespace dls::obs {
namespace {

TEST(ObsRegistry, CounterFoldsAcrossThreads) {
  Registry reg;
  const Counter hits = reg.counter("hits_total", "test counter");
  constexpr int kThreads = 8, kPer = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&] {
      for (int i = 0; i < kPer; ++i) hits.inc();
    });
  for (auto& th : pool) th.join();
  EXPECT_EQ(hits.value(), static_cast<std::uint64_t>(kThreads) * kPer);
  EXPECT_GE(reg.shard_count(), 1u);

  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.series.size(), 1u);
  EXPECT_EQ(snap.series[0].counter, static_cast<std::uint64_t>(kThreads) * kPer);
}

TEST(ObsRegistry, ReRegisterReturnsTheSameSeries) {
  Registry reg;
  const Counter a = reg.counter("dup_total", "help", "k=\"v\"");
  const Counter b = reg.counter("dup_total", "help", "k=\"v\"");
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(a.value(), 7u);
  // A different label set under the same family is a distinct series...
  const Counter c = reg.counter("dup_total", "help", "k=\"w\"");
  c.inc();
  EXPECT_EQ(c.value(), 1u);
  EXPECT_EQ(reg.snapshot().series.size(), 2u);
  // ...but a different *type* under the same family name is an error.
  EXPECT_THROW((void)reg.gauge("dup_total", "help"), Error);
}

TEST(ObsRegistry, CapacityLimitsAreEnforced) {
  Registry::Limits limits;
  limits.max_counters = 2;
  Registry reg(limits);
  (void)reg.counter("a_total", "");
  (void)reg.counter("b_total", "");
  EXPECT_THROW((void)reg.counter("c_total", ""), Error);
}

TEST(ObsRegistry, DisabledHandlesDropWrites) {
  Registry reg;
  const Counter n = reg.counter("n_total", "");
  const Gauge g = reg.gauge("g", "");
  const Histogram h = reg.histogram("h_seconds", "", {1.0});
  reg.set_enabled(false);
  n.inc(5);
  g.set(3.0);
  h.observe(0.5);
  EXPECT_EQ(n.value(), 0u);
  reg.set_enabled(true);
  n.inc(5);
  EXPECT_EQ(n.value(), 5u);
}

TEST(ObsRegistry, GaugeAndHistogramSemantics) {
  Registry reg;
  const Gauge g = reg.gauge("depth", "queue depth");
  g.set(4.0);
  g.add(-1.5);
  const Histogram h = reg.histogram("lat_seconds", "", {0.01, 0.1, 1.0});
  h.observe(0.005);
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);

  const RegistrySnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.series.size(), 2u);
  EXPECT_DOUBLE_EQ(snap.series[0].gauge, 2.5);
  const SeriesSnapshot& hist = snap.series[1];
  ASSERT_EQ(hist.buckets.size(), 4u);  // 3 bounds + Inf
  EXPECT_EQ(hist.buckets[0], 1u);
  EXPECT_EQ(hist.buckets[1], 1u);
  EXPECT_EQ(hist.buckets[2], 1u);
  EXPECT_EQ(hist.buckets[3], 1u);
  EXPECT_EQ(hist.count, 4u);
  EXPECT_DOUBLE_EQ(hist.sum, 5.555);
}

TEST(ObsExport, PrometheusTextShape) {
  Registry reg;
  reg.counter("req_total", "requests", "method=\"get\"").inc(2);
  reg.counter("req_total", "requests", "method=\"post\"").inc(1);
  reg.gauge("temp", "").set(10.0);
  reg.histogram("lat_seconds", "", {0.5}).observe(0.25);

  const std::string text = to_prometheus(reg.snapshot());
  // One HELP/TYPE header per family, even with several series.
  EXPECT_EQ(text.find("# HELP req_total requests"),
            text.rfind("# HELP req_total requests"));
  EXPECT_NE(text.find("req_total{method=\"get\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("req_total{method=\"post\"} 1\n"), std::string::npos);
  // Integral doubles print as plain integers.
  EXPECT_NE(text.find("temp 10\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"0.5\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum 0.25\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 1\n"), std::string::npos);
  // Identical state must render to identical bytes (scrape determinism).
  EXPECT_EQ(text, to_prometheus(reg.snapshot()));
}

TEST(ObsExport, JsonContainsEverySeries) {
  Registry reg;
  reg.counter("a_total", "ha").inc(7);
  reg.gauge("b", "hb").set(1.25);
  const std::string json = to_json(reg.snapshot());
  EXPECT_NE(json.find("\"name\":\"a_total\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":7"), std::string::npos);
  EXPECT_NE(json.find("\"value\":1.25"), std::string::npos);
}

TEST(ObsExport, FormatDoubleRoundTrips) {
  EXPECT_EQ(format_double(10.0), "10");
  EXPECT_EQ(format_double(0.1), "0.1");
  EXPECT_EQ(format_double(1e300), "1e+300");
  const double v = 0.1 + 0.2;
  EXPECT_EQ(std::stod(format_double(v)), v);
}

TEST(ObsTrace, RingEvictsOldestAndCountsDrops) {
  TraceRing ring(3);
  for (int i = 0; i < 5; ++i)
    ring.emit("span" + std::to_string(i));
  const std::vector<TraceSpan> spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].name, "span2");
  EXPECT_EQ(spans[2].name, "span4");
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(ObsTrace, SinkWritesJsonl) {
  const std::string path = "obs_trace_test.jsonl";
  {
    TraceRing ring(8);
    ring.set_sink(path);
    ring.emit("solve", "pivots=3", 1250);
    ring.set_sink("");
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"name\":\"solve\""), std::string::npos);
  EXPECT_NE(line.find("\"detail\":\"pivots=3\""), std::string::npos);
  EXPECT_NE(line.find("\"dur_ns\":1250"), std::string::npos);
  in.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dls::obs
