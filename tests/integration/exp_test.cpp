#include "exp/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

namespace dls::exp {
namespace {

CaseConfig small_config(std::uint64_t seed) {
  CaseConfig config;
  config.params.num_clusters = 6;
  config.params.connectivity = 0.5;
  config.params.heterogeneity = 0.4;
  config.params.mean_gateway_bw = 100;
  config.params.mean_backbone_bw = 20;
  config.params.mean_max_connections = 4;
  config.seed = seed;
  return config;
}

TEST(RunCase, ProducesOrderedObjectives) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    CaseConfig config = small_config(seed);
    config.with_lprr = true;
    for (core::Objective obj : {core::Objective::Sum, core::Objective::MaxMin}) {
      config.objective = obj;
      const CaseResult r = run_case(config);
      ASSERT_TRUE(r.ok);
      EXPECT_GT(r.lp, 0.0);
      // Every heuristic below the bound; LPRG above LPR by construction.
      for (double v : {r.g, r.lpr, r.lprg, r.lprr}) {
        EXPECT_GE(v, -1e-9);
        EXPECT_LE(v, r.lp * (1 + 1e-5));
      }
      EXPECT_GE(r.lprg, r.lpr - 1e-9);
      // Timings populated.
      EXPECT_GE(r.t_lp.seconds, 0.0);
      EXPECT_GT(r.t_lprr.lp_solves, 0);
    }
  }
}

TEST(RunCase, DeterministicForSameSeed) {
  CaseConfig config = small_config(77);
  config.with_lprr = true;
  const CaseResult a = run_case(config);
  const CaseResult b = run_case(config);
  ASSERT_TRUE(a.ok);
  EXPECT_EQ(a.lp, b.lp);
  EXPECT_EQ(a.g, b.g);
  EXPECT_EQ(a.lprg, b.lprg);
  EXPECT_EQ(a.lprr, b.lprr);
}

TEST(RunCase, SkipsLprrUnlessRequested) {
  const CaseResult r = run_case(small_config(5));
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(std::isnan(r.lprr));
  EXPECT_TRUE(std::isnan(r.lprr_eq));
  EXPECT_TRUE(std::isnan(r.lprr_1shot));
}

TEST(RunCase, OneShotVariantsRun) {
  CaseConfig config = small_config(11);
  config.with_lprr_oneshot = true;
  const CaseResult r = run_case(config);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(std::isnan(r.lprr_1shot));
  EXPECT_FALSE(std::isnan(r.lprr_1shot_eq));
  EXPECT_LE(r.lprr_1shot, r.lp * (1 + 1e-5));
}

TEST(RunCase, ZeroPayoffSpreadPinsRatiosToOne) {
  // The DESIGN.md claim: uniform payoffs make both objectives trivial —
  // local-only computation is optimal and the greedy finds it exactly.
  // LPRG stays close but keeps a small rounding loss: the relaxation's
  // vertex may cross-ship, and the greedy refinement cannot revoke those
  // transfers.
  CaseConfig config = small_config(13);
  config.payoff_spread = 0.0;
  for (core::Objective obj : {core::Objective::Sum, core::Objective::MaxMin}) {
    config.objective = obj;
    const CaseResult r = run_case(config);
    ASSERT_TRUE(r.ok);
    EXPECT_NEAR(r.g / r.lp, 1.0, 1e-6);
    EXPECT_GE(r.lprg / r.lp, 0.95);
  }
}

TEST(RunCase, RejectsBadSpread) {
  CaseConfig config = small_config(1);
  config.payoff_spread = 1.0;
  EXPECT_THROW(run_case(config), Error);
}

TEST(SampleGridParams, DrawsFromTableOneValues) {
  const platform::Table1Grid grid;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const auto p = sample_grid_params(grid, 25, rng);
    EXPECT_EQ(p.num_clusters, 25);
    EXPECT_NE(std::find(grid.connectivity.begin(), grid.connectivity.end(),
                        p.connectivity),
              grid.connectivity.end());
    EXPECT_NE(std::find(grid.heterogeneity.begin(), grid.heterogeneity.end(),
                        p.heterogeneity),
              grid.heterogeneity.end());
    EXPECT_NE(std::find(grid.mean_gateway_bw.begin(), grid.mean_gateway_bw.end(),
                        p.mean_gateway_bw),
              grid.mean_gateway_bw.end());
  }
}

TEST(RatioAccumulator, MeanStddevAndGuards) {
  RatioAccumulator stats;
  stats.add(5.0, 10.0);
  stats.add(10.0, 10.0);
  EXPECT_EQ(stats.count(), 2);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.75);
  // Accumulator-backed: the full spread statistics ride along.
  EXPECT_DOUBLE_EQ(stats.stddev(), std::sqrt(0.125 / 1.0));
  EXPECT_DOUBLE_EQ(stats.acc().min(), 0.5);
  EXPECT_DOUBLE_EQ(stats.acc().max(), 1.0);
  stats.add(1.0, 0.0);  // degenerate lp: skipped
  stats.add(std::nan(""), 10.0);  // not-run method: skipped
  EXPECT_EQ(stats.count(), 2);
  RatioAccumulator empty;
  EXPECT_EQ(empty.mean(), 0.0);
  EXPECT_EQ(empty.stddev(), 0.0);
}

TEST(BenchEnv, ScaleParsing) {
  // Default when unset.
  unsetenv("DLS_BENCH_SCALE");
  EXPECT_DOUBLE_EQ(bench_scale(), 1.0);
  EXPECT_EQ(scaled(8), 8);
  setenv("DLS_BENCH_SCALE", "0.25", 1);
  EXPECT_DOUBLE_EQ(bench_scale(), 0.25);
  EXPECT_EQ(scaled(8), 2);
  EXPECT_EQ(scaled(1), 1);  // never below 1
  setenv("DLS_BENCH_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(bench_scale(), 1.0);
  unsetenv("DLS_BENCH_SCALE");
}

TEST(BenchEnv, SeedParsing) {
  unsetenv("DLS_BENCH_SEED");
  EXPECT_EQ(bench_seed(), 20240515ULL);
  setenv("DLS_BENCH_SEED", "42", 1);
  EXPECT_EQ(bench_seed(), 42ULL);
  unsetenv("DLS_BENCH_SEED");
}

}  // namespace
}  // namespace dls::exp
