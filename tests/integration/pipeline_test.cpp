// End-to-end integration: generate -> solve (every heuristic) -> validate
// -> reconstruct schedule -> serialize platform round-trip -> simulate.
#include <gtest/gtest.h>

#include <cmath>

#include "core/heuristics.hpp"
#include "core/schedule.hpp"
#include "platform/generator.hpp"
#include "platform/serialization.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace dls {
namespace {

using core::Objective;

struct PipelineCase {
  int num_clusters;
  Objective objective;
  std::uint64_t seed;
};

class FullPipelineTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FullPipelineTest, EveryStageConsistent) {
  const auto [num_clusters, seed_base] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed_base) * 97 + num_clusters);

  platform::GeneratorParams params;
  params.num_clusters = num_clusters;
  params.connectivity = rng.uniform(0.2, 0.8);
  params.heterogeneity = rng.uniform(0.0, 0.8);
  params.mean_gateway_bw = rng.uniform(50.0, 400.0);
  params.mean_backbone_bw = rng.uniform(10.0, 80.0);
  params.mean_max_connections = rng.uniform(2.0, 30.0);

  // Stage 1: platform generation + serialization round-trip.
  const platform::Platform plat = generate_platform(params, rng);
  ASSERT_NO_THROW(plat.validate());
  const platform::Platform plat2 = platform::from_text(platform::to_text(plat));
  ASSERT_EQ(platform::to_text(plat2), platform::to_text(plat));

  std::vector<double> payoffs(plat.num_clusters());
  for (double& p : payoffs) p = rng.uniform(0.5, 1.5);

  for (Objective obj : {Objective::Sum, Objective::MaxMin}) {
    const core::SteadyStateProblem problem(plat, payoffs, obj);

    // Stage 2: bound + heuristics, all valid and bounded by LP.
    const auto bound = core::lp_upper_bound(problem);
    ASSERT_EQ(bound.status, lp::SolveStatus::Optimal);
    const auto g = core::run_greedy(problem);
    const auto lprg = core::run_lprg(problem);
    Rng coin = rng.split();
    const auto lprr = core::run_lprr(problem, coin);
    for (const auto* h : {&g, &lprg, &lprr}) {
      ASSERT_EQ(h->status, lp::SolveStatus::Optimal);
      ASSERT_TRUE(core::validate_allocation(problem, h->allocation, 1e-5).ok);
      EXPECT_LE(h->objective, bound.objective * (1 + 1e-5) + 1e-6);
    }

    // Stage 3: schedule reconstruction preserves throughput (within the
    // rationalization loss) and passes the per-period validator.
    const auto sched = core::build_periodic_schedule(problem, lprg.allocation);
    ASSERT_TRUE(core::validate_schedule(problem, sched).ok);
    double sched_objective;
    {
      core::Allocation as_alloc(plat.num_clusters());
      for (const auto& t : sched.compute)
        as_alloc.add_alpha(t.app, t.on_cluster,
                           static_cast<double>(t.units) / sched.period);
      sched_objective = problem.objective_of(as_alloc);
    }
    EXPECT_LE(sched_objective, lprg.objective + 1e-9);
    EXPECT_GE(sched_objective,
              lprg.objective - plat.num_clusters() * plat.num_clusters() / 1000.0);

    // Stage 4: paced simulation executes the schedule on time.
    sim::SimOptions opt;
    opt.periods = 3;
    opt.warmup_periods = 1;
    const auto report = sim::simulate_schedule(problem, sched, opt);
    EXPECT_LE(report.worst_overrun_ratio, 1.0 + 1e-6);
    for (int k = 0; k < plat.num_clusters(); ++k)
      EXPECT_NEAR(report.throughput[k], sched.throughput(k), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, FullPipelineTest,
    ::testing::Combine(::testing::Values(2, 4, 7, 12), ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "K" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(PipelineEdgeCases, IsolatedClusterAmongConnected) {
  // Three clusters; only two are linked. The isolated one still runs its
  // application locally and the pipeline holds together.
  platform::Platform plat;
  const auto r0 = plat.add_router();
  const auto r1 = plat.add_router();
  const auto r2 = plat.add_router();
  plat.add_cluster(100, 50, r0);
  plat.add_cluster(50, 50, r1);
  plat.add_cluster(70, 20, r2);
  plat.add_backbone(r0, r1, 10, 2);
  plat.compute_shortest_path_routes();
  core::SteadyStateProblem problem(plat, {1.0, 1.0, 1.0}, Objective::MaxMin);
  const auto lprg = core::run_lprg(problem);
  ASSERT_TRUE(core::validate_allocation(problem, lprg.allocation).ok);
  // The isolated app is the bottleneck of the min: alpha_2 = 70.
  EXPECT_NEAR(lprg.objective, 70.0, 1e-5);
  const auto sched = core::build_periodic_schedule(problem, lprg.allocation);
  EXPECT_TRUE(core::validate_schedule(problem, sched).ok);
}

TEST(PipelineEdgeCases, BottleneckSharedLinkTriangle) {
  // Two sources behind one shared backbone segment to a fast worker:
  // max-connect on the shared link limits combined shipping.
  platform::Platform plat;
  const auto rs1 = plat.add_router();
  const auto rs2 = plat.add_router();
  const auto hub = plat.add_router();
  const auto rw = plat.add_router();
  plat.add_cluster(0, 100, rs1, "src1");
  plat.add_cluster(0, 100, rs2, "src2");
  plat.add_cluster(0, 1, hub, "hubsite");  // speed 0: pure transit site
  plat.add_cluster(500, 400, rw, "worker");
  plat.add_backbone(rs1, hub, 10, 2);
  plat.add_backbone(rs2, hub, 10, 2);
  plat.add_backbone(hub, rw, 10, 3);  // shared: at most 3 connections total
  plat.compute_shortest_path_routes();
  core::SteadyStateProblem problem(plat, {1.0, 1.0, 0.0, 0.0}, Objective::MaxMin);

  const auto bound = core::lp_upper_bound(problem);
  ASSERT_EQ(bound.status, lp::SolveStatus::Optimal);
  // Shared link: 3 connections * bw 10 = 30 total, split fairly: 15 each.
  EXPECT_NEAR(bound.objective, 15.0, 1e-5);

  const auto exact = core::solve_exact(problem);
  ASSERT_EQ(exact.status, lp::SolveStatus::Optimal);
  // Integer betas: 3 connections split 2/1 -> the min app gets 10.
  EXPECT_NEAR(exact.objective, 10.0, 1e-5);

  Rng coin(5);
  const auto lprr = core::run_lprr(problem, coin);
  EXPECT_LE(lprr.objective, exact.objective + 1e-6);
  EXPECT_TRUE(core::validate_allocation(problem, lprr.allocation).ok);
}

TEST(PipelineEdgeCases, HighPriorityAppDominatesSum) {
  // With SUM and a dominant payoff, the optimum ships everything to the
  // high-payoff application's benefit; check LPRG follows.
  platform::Platform plat;
  const auto r0 = plat.add_router();
  const auto r1 = plat.add_router();
  plat.add_cluster(100, 100, r0);
  plat.add_cluster(100, 100, r1);
  plat.add_backbone(r0, r1, 20, 5);
  plat.compute_shortest_path_routes();
  core::SteadyStateProblem problem(plat, {10.0, 1.0}, Objective::Sum);
  const auto bound = core::lp_upper_bound(problem);
  // App 0 takes its own cluster (100) plus 100 shipped into cluster 1
  // (bw 20*5 = 100 >= gateway 100): 10*200 = 2000.
  ASSERT_EQ(bound.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(bound.objective, 2000.0, 1e-4);
  const auto lprg = core::run_lprg(problem);
  EXPECT_NEAR(lprg.objective, 2000.0, 1e-4);
  EXPECT_NEAR(lprg.allocation.alpha(0, 1), 100.0, 1e-4);
}

}  // namespace
}  // namespace dls
