// Reproducibility guarantees: everything randomized is a pure function of
// its seed, across modules and through the full pipeline.
#include <gtest/gtest.h>

#include <sstream>

#include "core/heuristics.hpp"
#include "core/schedule.hpp"
#include "platform/generator.hpp"
#include "platform/serialization.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace dls {
namespace {

std::string allocation_fingerprint(const core::Allocation& alloc) {
  std::ostringstream oss;
  oss.precision(17);
  for (int k = 0; k < alloc.num_clusters(); ++k)
    for (int l = 0; l < alloc.num_clusters(); ++l)
      oss << alloc.alpha(k, l) << ',' << alloc.beta(k, l) << ';';
  return oss.str();
}

platform::GeneratorParams mid_params() {
  platform::GeneratorParams p;
  p.num_clusters = 9;
  p.connectivity = 0.45;
  p.heterogeneity = 0.6;
  p.mean_gateway_bw = 150;
  p.mean_backbone_bw = 25;
  p.mean_max_connections = 6;
  return p;
}

TEST(Determinism, PlatformBitExactAcrossRuns) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng a(seed), b(seed);
    EXPECT_EQ(platform::to_text(generate_platform(mid_params(), a)),
              platform::to_text(generate_platform(mid_params(), b)));
  }
}

TEST(Determinism, HeuristicsBitExactOnSamePlatform) {
  Rng rng(404);
  const auto plat = generate_platform(mid_params(), rng);
  std::vector<double> payoffs(plat.num_clusters(), 1.0);
  payoffs[0] = 2.0;
  const core::SteadyStateProblem problem(plat, payoffs, core::Objective::MaxMin);

  EXPECT_EQ(allocation_fingerprint(core::run_greedy(problem).allocation),
            allocation_fingerprint(core::run_greedy(problem).allocation));
  EXPECT_EQ(allocation_fingerprint(core::run_lprg(problem).allocation),
            allocation_fingerprint(core::run_lprg(problem).allocation));
  Rng c1(7), c2(7);
  EXPECT_EQ(allocation_fingerprint(core::run_lprr(problem, c1).allocation),
            allocation_fingerprint(core::run_lprr(problem, c2).allocation));
}

TEST(Determinism, LprrSeedSensitivity) {
  // Different coins should usually give different allocations on a
  // platform with fractional relaxed betas.
  Rng rng(808);
  platform::GeneratorParams params = mid_params();
  params.mean_max_connections = 2;  // scarce connections: rounding matters
  const auto plat = generate_platform(params, rng);
  std::vector<double> payoffs(plat.num_clusters(), 1.0);
  const core::SteadyStateProblem problem(plat, payoffs, core::Objective::MaxMin);
  int distinct = 0;
  std::string last;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng coin(seed);
    const std::string fp =
        allocation_fingerprint(core::run_lprr(problem, coin).allocation);
    if (!last.empty() && fp != last) ++distinct;
    last = fp;
  }
  EXPECT_GT(distinct, 0);
}

TEST(Determinism, SimulatorIsDeterministic) {
  Rng rng(99);
  const auto plat = generate_platform(mid_params(), rng);
  std::vector<double> payoffs(plat.num_clusters(), 1.0);
  const core::SteadyStateProblem problem(plat, payoffs, core::Objective::Sum);
  const auto h = core::run_lprg(problem);
  const auto sched = core::build_periodic_schedule(problem, h.allocation);
  sim::SimOptions opt;
  opt.policy = sim::SharingPolicy::MaxMin;
  const auto r1 = sim::simulate_schedule(problem, sched, opt);
  const auto r2 = sim::simulate_schedule(problem, sched, opt);
  EXPECT_EQ(r1.total_time, r2.total_time);
  EXPECT_EQ(r1.throughput, r2.throughput);
  EXPECT_EQ(r1.rate_recomputations, r2.rate_recomputations);
}

TEST(Determinism, ScheduleStableUnderSerializationRoundTrip) {
  Rng rng(2222);
  const auto plat = generate_platform(mid_params(), rng);
  const auto plat2 = platform::from_text(platform::to_text(plat));
  std::vector<double> payoffs(plat.num_clusters(), 1.0);
  const core::SteadyStateProblem p1(plat, payoffs, core::Objective::MaxMin);
  const core::SteadyStateProblem p2(plat2, payoffs, core::Objective::MaxMin);
  EXPECT_EQ(allocation_fingerprint(core::run_lprg(p1).allocation),
            allocation_fingerprint(core::run_lprg(p2).allocation));
}

}  // namespace
}  // namespace dls
