// The curated realistic platform file in data/ must stay loadable and
// schedulable — it is referenced by the README and usable from the CLI.
#include <gtest/gtest.h>

#include <fstream>

#include "core/heuristics.hpp"
#include "core/schedule.hpp"
#include "platform/serialization.hpp"
#include "sim/simulator.hpp"

#ifndef DLS_SOURCE_DIR
#define DLS_SOURCE_DIR "."
#endif

namespace dls {
namespace {

platform::Platform load_federation() {
  std::ifstream in(std::string(DLS_SOURCE_DIR) + "/data/grid_federation.platform");
  EXPECT_TRUE(static_cast<bool>(in));
  return platform::read_platform(in);
}

TEST(DataPlatform, LoadsAndValidates) {
  const platform::Platform plat = load_federation();
  EXPECT_EQ(plat.num_clusters(), 7);
  EXPECT_EQ(plat.num_routers(), 11);
  EXPECT_EQ(plat.num_links(), 10);
  EXPECT_NO_THROW(plat.validate());
  // Latencies present (v2 file): the transatlantic hop is the slowest.
  double max_latency = 0;
  for (int i = 0; i < plat.num_links(); ++i)
    max_latency = std::max(max_latency, plat.link(i).latency);
  EXPECT_GT(max_latency, 40.0);
}

TEST(DataPlatform, EndToEndScheduling) {
  platform::Platform plat = load_federation();
  plat.compute_shortest_path_routes();
  // Tsukuba's application is urgent; its site is the smallest, forcing
  // exports across the eurasia link.
  std::vector<double> payoffs(plat.num_clusters(), 1.0);
  payoffs[5] = 3.0;  // tsukuba
  const core::SteadyStateProblem problem(plat, payoffs, core::Objective::MaxMin);
  const auto bound = core::lp_upper_bound(problem);
  const auto lprg = core::run_lprg(problem);
  ASSERT_EQ(lprg.status, lp::SolveStatus::Optimal);
  EXPECT_TRUE(core::validate_allocation(problem, lprg.allocation, 1e-5).ok);
  EXPECT_GT(lprg.objective, 0.0);
  EXPECT_LE(lprg.objective, bound.objective * (1 + 1e-6));

  const auto sched = core::build_periodic_schedule(problem, lprg.allocation);
  EXPECT_TRUE(core::validate_schedule(problem, sched).ok);
  sim::SimOptions opt;
  opt.periods = 3;
  opt.warmup_periods = 1;
  const auto report = sim::simulate_schedule(problem, sched, opt);
  EXPECT_LE(report.worst_overrun_ratio, 1.0 + 1e-6);
}

TEST(DataPlatform, TcpBiasSlowsLongHaulFlows) {
  platform::Platform plat = load_federation();
  plat.compute_shortest_path_routes();
  std::vector<double> payoffs(plat.num_clusters(), 1.0);
  payoffs[5] = 3.0;
  const core::SteadyStateProblem problem(plat, payoffs, core::Objective::MaxMin);
  const auto lprg = core::run_lprg(problem);
  const auto sched = core::build_periodic_schedule(problem, lprg.allocation);
  sim::SimOptions fair;
  fair.periods = 3;
  fair.warmup_periods = 0;
  fair.policy = sim::SharingPolicy::MaxMin;
  sim::SimOptions tcp = fair;
  tcp.policy = sim::SharingPolicy::TcpRttBias;
  const auto fair_report = sim::simulate_schedule(problem, sched, fair);
  const auto tcp_report = sim::simulate_schedule(problem, sched, tcp);
  // RTT bias can only stretch periods relative to unbiased sharing here.
  EXPECT_GE(tcp_report.worst_overrun_ratio, fair_report.worst_overrun_ratio - 1e-9);
}

}  // namespace
}  // namespace dls
