#include "cli/args.hpp"

#include <gtest/gtest.h>

namespace dls::cli {
namespace {

TEST(Args, ParsesCommandOptionsAndFlags) {
  Args args({"solve", "--platform", "p.txt", "--schedule", "--seed", "42"});
  EXPECT_EQ(args.command(), "solve");
  EXPECT_EQ(args.get_string("platform", ""), "p.txt");
  EXPECT_TRUE(args.get_flag("schedule"));
  EXPECT_EQ(args.get_u64("seed", 0), 42u);
  EXPECT_NO_THROW(args.reject_unknown());
}

TEST(Args, EmptyInput) {
  Args args({});
  EXPECT_TRUE(args.command().empty());
  EXPECT_NO_THROW(args.reject_unknown());
}

TEST(Args, DefaultsWhenAbsent) {
  Args args({"generate"});
  EXPECT_EQ(args.get_string("out", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(args.get_double("connectivity", 0.4), 0.4);
  EXPECT_EQ(args.get_int("clusters", 10), 10);
  EXPECT_FALSE(args.get_flag("connected"));
}

TEST(Args, NumericParsing) {
  Args args({"x", "--a", "2.5", "--b", "7", "--c", "nope"});
  EXPECT_DOUBLE_EQ(args.get_double("a", 0), 2.5);
  EXPECT_EQ(args.get_int("b", 0), 7);
  EXPECT_THROW(static_cast<void>(args.get_double("c", 0)), Error);
  EXPECT_THROW(static_cast<void>(args.get_int("a", 0)), Error);  // 2.5 not int
}

TEST(Args, DoubleList) {
  Args args({"x", "--payoffs", "1,2.5,0"});
  const auto list = args.get_double_list("payoffs");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_DOUBLE_EQ(list[1], 2.5);
  Args bad({"x", "--payoffs", "1,oops"});
  EXPECT_THROW(static_cast<void>(bad.get_double_list("payoffs")), Error);
  Args absent({"x"});
  EXPECT_TRUE(absent.get_double_list("payoffs").empty());
}

TEST(Args, RejectUnknownNamesUnconsumed) {
  Args args({"solve", "--platform", "p", "--typo", "1"});
  static_cast<void>(args.get_string("platform", ""));
  EXPECT_THROW(args.reject_unknown(), Error);
}

TEST(Args, RejectsPositionalAfterOptions) {
  EXPECT_THROW(Args({"solve", "--a", "1", "stray", "more"}), Error);
}

TEST(Args, FlagFollowedByOption) {
  // "--schedule --seed 1": schedule must parse as a flag, not a key-value.
  Args args({"solve", "--schedule", "--seed", "1"});
  EXPECT_TRUE(args.get_flag("schedule"));
  EXPECT_EQ(args.get_u64("seed", 0), 1u);
}

}  // namespace
}  // namespace dls::cli
