// CLI surfaces added by ISSUE 8: `dls --version`, `dls sweep --loads`,
// `dls online --loads`, and the empty-shard campaign warning.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

#ifndef DLS_SOURCE_DIR
#define DLS_SOURCE_DIR "."
#endif

namespace dls::cli {
namespace {

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun run(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = run_cli(std::move(args), out, err);
  return {code, out.str(), err.str()};
}

TEST(MultiLoadCli, VersionPrintsBuildSummary) {
  for (const char* spelling : {"--version", "version"}) {
    const CliRun r = run({spelling});
    EXPECT_EQ(r.code, 0) << r.err;
    // "dls <revision> (<build type>, <compiler>)"
    EXPECT_EQ(r.out.rfind("dls ", 0), 0u) << r.out;
    EXPECT_NE(r.out.find('('), std::string::npos);
    EXPECT_NE(r.out.find(','), std::string::npos);
  }
}

TEST(MultiLoadCli, SweepLoadsRunsJointCases) {
  const CliRun r = run({"sweep", "--loads", "3", "--clusters", "5", "--cases",
                        "4", "--seed", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("3 concurrent loads"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("jain"), std::string::npos);
  EXPECT_NE(r.out.find("4/4 cases ok"), std::string::npos);
}

TEST(MultiLoadCli, SweepLoadsAcceptsEveryObjective) {
  for (const char* objective : {"sum", "maxmin", "pf"}) {
    const CliRun r = run({"sweep", "--loads", "2", "--clusters", "4", "--cases",
                          "2", "--objective", objective});
    EXPECT_EQ(r.code, 0) << objective << ": " << r.err;
  }
}

TEST(MultiLoadCli, SweepLoadsRejectsBadOptions) {
  EXPECT_EQ(run({"sweep", "--loads", "2", "--objective", "lex"}).code, 1);
  EXPECT_EQ(run({"sweep", "--loads", "2", "--load-mix", "zipf"}).code, 1);
  EXPECT_EQ(run({"sweep", "--loads", "-1"}).code, 1);
}

TEST(MultiLoadCli, OnlineLoadsUsesTheSharedLp) {
  const CliRun r = run({"online", "--loads", "--clusters", "4", "--arrivals",
                        "30", "--seed", "3", "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("\"method\":\"shared-lp\""), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"objective\":\"sum\""), std::string::npos);
  // Admit-immediately semantics: the shared LP has no FIFO queue.
  EXPECT_NE(r.out.find("\"queued_arrivals\":0"), std::string::npos);
}

TEST(MultiLoadCli, OnlineLoadsObjectiveReachesTheLabel) {
  const CliRun r = run({"online", "--loads", "--objective", "maxmin",
                        "--clusters", "4", "--arrivals", "20", "--seed", "3"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("method shared-lp"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("objective maxmin"), std::string::npos);
}

TEST(MultiLoadCli, OnlineLoadsRejectsIncompatibleModes) {
  EXPECT_EQ(run({"online", "--loads", "--reps", "3", "--clusters", "4"}).code, 1);
  EXPECT_EQ(run({"online", "--loads", "--rate-model", "sim", "--clusters",
                 "4"}).code, 1);
  EXPECT_EQ(run({"online", "--loads", "--objective", "lex", "--clusters",
                 "4"}).code, 1);
  EXPECT_EQ(run({"dynamics", "--loads", "--clusters", "4"}).code, 1);
}

TEST(MultiLoadCli, CampaignEmptyShardWarnsButSucceeds) {
  const std::string spec =
      std::string(DLS_SOURCE_DIR) + "/data/multi_load.campaign";
  const CliRun r = run({"campaign", "--spec", spec, "--shard", "50/60",
                        "--json"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.err.find("zero cases"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("shard 50/60"), std::string::npos);
  EXPECT_NE(r.out.find("\"executed\":0"), std::string::npos);
}

TEST(MultiLoadCli, CampaignRunsTheCommittedMultiLoadSpec) {
  const std::string spec =
      std::string(DLS_SOURCE_DIR) + "/data/multi_load.campaign";
  const CliRun a = run({"campaign", "--spec", spec, "--jobs", "1", "--json"});
  const CliRun b = run({"campaign", "--spec", spec, "--jobs", "4", "--json"});
  EXPECT_EQ(a.code, 0) << a.err;
  EXPECT_TRUE(a.err.empty()) << a.err;
  EXPECT_EQ(a.out, b.out);  // jobs-invariance, bit for bit
  EXPECT_NE(a.out.find("\"kind\":\"loads\""), std::string::npos);
}

}  // namespace
}  // namespace dls::cli
