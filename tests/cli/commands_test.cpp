// End-to-end tests of the dls command-line tool through run_cli.
#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#ifndef DLS_SOURCE_DIR
#define DLS_SOURCE_DIR "."
#endif

namespace dls::cli {
namespace {

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun run(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = run_cli(std::move(args), out, err);
  return {code, out.str(), err.str()};
}

/// Writes a platform via `generate` into a temp file; returns its path.
std::string make_platform_file() {
  const std::string path = ::testing::TempDir() + "cli_test.platform";
  const CliRun r = run({"generate", "--clusters", "4", "--seed", "9",
                        "--connected", "--out", path});
  EXPECT_EQ(r.code, 0) << r.err;
  return path;
}

TEST(Cli, NoCommandShowsUsageAndFails) {
  const CliRun r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  const CliRun r = run({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("generate"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const CliRun r = run({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, GenerateToStdout) {
  const CliRun r = run({"generate", "--clusters", "3", "--seed", "1"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("dls-platform"), std::string::npos);
  EXPECT_NE(r.out.find("cluster"), std::string::npos);
}

TEST(Cli, GenerateRejectsUnknownOption) {
  const CliRun r = run({"generate", "--clusterz", "3"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--clusterz"), std::string::npos);
}

TEST(Cli, SolveEachMethod) {
  const std::string path = make_platform_file();
  for (const char* method : {"g", "lpr", "lprg", "lprr", "lp", "exact"}) {
    const CliRun r = run({"solve", "--platform", path, "--method", method});
    EXPECT_EQ(r.code, 0) << method << ": " << r.err;
    EXPECT_NE(r.out.find("objective"), std::string::npos) << method;
    EXPECT_NE(r.out.find("LP bound"), std::string::npos) << method;
  }
  std::remove(path.c_str());
}

TEST(Cli, SolveWithScheduleAndPayoffs) {
  const std::string path = make_platform_file();
  const CliRun r = run({"solve", "--platform", path, "--objective", "sum",
                        "--payoffs", "2,1,1,0", "--schedule"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("period:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, SolveRejectsBadInputs) {
  const std::string path = make_platform_file();
  EXPECT_EQ(run({"solve", "--platform", "/nonexistent"}).code, 1);
  EXPECT_EQ(run({"solve", "--platform", path, "--method", "magic"}).code, 1);
  EXPECT_EQ(run({"solve", "--platform", path, "--objective", "best"}).code, 1);
  EXPECT_EQ(run({"solve", "--platform", path, "--payoffs", "1,2"}).code, 1);
  std::remove(path.c_str());
}

TEST(Cli, SimulatePolicies) {
  const std::string path = make_platform_file();
  for (const char* policy : {"paced", "maxmin", "tcp", "window"}) {
    const CliRun r = run({"simulate", "--platform", path, "--policy", policy,
                          "--periods", "3"});
    EXPECT_EQ(r.code, 0) << policy << ": " << r.err;
    EXPECT_NE(r.out.find("overrun"), std::string::npos);
    EXPECT_NE(r.out.find("rate solves"), std::string::npos);
  }
  EXPECT_EQ(run({"simulate", "--platform", path, "--policy", "bogus"}).code, 1);
  std::remove(path.c_str());
}

TEST(Cli, SimulateEngineSelection) {
  const std::string path = make_platform_file();
  for (const char* engine : {"incremental", "rescan"}) {
    const CliRun r = run({"simulate", "--platform", path, "--sim-engine", engine,
                          "--periods", "3"});
    EXPECT_EQ(r.code, 0) << engine << ": " << r.err;
    EXPECT_NE(r.out.find(std::string("engine ") + engine), std::string::npos);
  }
  EXPECT_EQ(run({"simulate", "--platform", path, "--sim-engine", "warp"}).code, 1);
  std::remove(path.c_str());
}

TEST(Cli, SweepRunsCasesInParallel) {
  const CliRun r = run({"sweep", "--clusters", "4", "--cases", "3", "--jobs", "2",
                        "--seed", "5"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("3/3 cases ok"), std::string::npos);
  EXPECT_NE(r.out.find("LPRG"), std::string::npos);
  // The Accumulator-backed aggregation carries the spread.
  EXPECT_NE(r.out.find("stddev"), std::string::npos);
  // Identical numbers regardless of worker count (determinism); the first
  // line carries wall time and is skipped.
  const CliRun serial = run({"sweep", "--clusters", "4", "--cases", "3", "--jobs",
                             "1", "--seed", "5"});
  EXPECT_EQ(serial.out.substr(serial.out.find('\n')),
            r.out.substr(r.out.find('\n')));
  EXPECT_EQ(run({"sweep", "--cases", "0"}).code, 1);
}

/// The committed example spec, resolved against the source tree.
std::string example_campaign_path() {
  return std::string(DLS_SOURCE_DIR) + "/data/example.campaign";
}

TEST(Cli, CampaignRunsTheCommittedExampleSpec) {
  const CliRun r = run({"campaign", "--spec", example_campaign_path(),
                        "--jobs", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("campaign 'example'"), std::string::npos);
  // All three surfaces in one run: offline sweep, stream, dynamics.
  EXPECT_NE(r.out.find("scenario=none"), std::string::npos);
  EXPECT_NE(r.out.find("scenario=poisson"), std::string::npos);
  EXPECT_NE(r.out.find("platform_events"), std::string::npos);
}

TEST(Cli, CampaignJsonIsWorkerCountInvariant) {
  const CliRun serial = run({"campaign", "--spec", example_campaign_path(),
                             "--jobs", "1", "--json"});
  const CliRun parallel = run({"campaign", "--spec", example_campaign_path(),
                               "--jobs", "8", "--json"});
  EXPECT_EQ(serial.code, 0) << serial.err;
  EXPECT_EQ(serial.out, parallel.out);
  EXPECT_NE(serial.out.find("\"command\":\"campaign\""), std::string::npos);
}

TEST(Cli, CampaignCsvAndCaseStream) {
  const std::string cases = ::testing::TempDir() + "cli_campaign.jsonl";
  const CliRun r = run({"campaign", "--spec", example_campaign_path(),
                        "--jobs", "2", "--csv", "--cases", cases});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("platform,scenario,objective"), std::string::npos);
  std::ifstream f(cases);
  std::string line;
  int lines = 0;
  std::size_t previous_case = 0;
  while (std::getline(f, line)) {
    EXPECT_EQ(line.find("{\"case\":"), 0u);
    // The stream arrives in case order.
    const std::size_t id = std::stoul(line.substr(8));
    if (lines > 0) EXPECT_GT(id, previous_case);
    previous_case = id;
    ++lines;
  }
  EXPECT_EQ(lines, 56);  // the example spec's full matrix
  std::remove(cases.c_str());
}

TEST(Cli, CampaignRejectsBadOptions) {
  const std::string spec = example_campaign_path();
  EXPECT_EQ(run({"campaign"}).code, 1);
  EXPECT_EQ(run({"campaign", "--spec", "/nonexistent.campaign"}).code, 1);
  EXPECT_EQ(run({"campaign", "--spec", spec, "--shard", "2/2"}).code, 1);
  EXPECT_EQ(run({"campaign", "--spec", spec, "--shard", "nope"}).code, 1);
  // A shard count of zero partitions nothing, and the diagnostic must
  // echo the offending text so multi-machine launch scripts can be
  // debugged from logs alone.
  const CliRun zero = run({"campaign", "--spec", spec, "--shard", "0/0"});
  EXPECT_EQ(zero.code, 1);
  EXPECT_NE(zero.err.find("'0/0'"), std::string::npos) << zero.err;
  EXPECT_NE(zero.err.find("partitions nothing"), std::string::npos) << zero.err;
  const CliRun mangled = run({"campaign", "--spec", spec, "--shard", "3/2"});
  EXPECT_EQ(mangled.code, 1);
  EXPECT_NE(mangled.err.find("'3/2'"), std::string::npos) << mangled.err;
  // Trailing garbage must not silently parse as a valid shard.
  EXPECT_EQ(run({"campaign", "--spec", spec, "--shard", "1x3/4"}).code, 1);
  EXPECT_EQ(run({"campaign", "--spec", spec, "--shard", "0/4junk"}).code, 1);
  EXPECT_EQ(run({"campaign", "--spec", spec, "--json", "--csv"}).code, 1);
  // Parse diagnostics surface the line number.
  const std::string bad = ::testing::TempDir() + "cli_bad.campaign";
  {
    std::ofstream f(bad);
    f << "dls-campaign 1\nworkload frobnicate\n";
  }
  const CliRun r = run({"campaign", "--spec", bad});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("line 2"), std::string::npos) << r.err;
  std::remove(bad.c_str());
}

TEST(Cli, CampaignServeRejectsConflictingOptions) {
  const std::string spec = example_campaign_path();
  // A serving coordinator always covers the full matrix: sharding it
  // would silently break the bit-identity contract.
  EXPECT_EQ(
      run({"campaign", "--spec", spec, "--serve", "0", "--shard", "0/2"}).code,
      1);
  EXPECT_EQ(run({"campaign", "--spec", spec, "--serve", "0", "--resume"}).code,
            1);  // --resume needs --checkpoint
  EXPECT_EQ(run({"campaign", "--spec", spec, "--serve", "70000"}).code, 1);
  EXPECT_EQ(run({"campaign", "--spec", spec, "--serve", "0", "--range-size",
                 "0"}).code,
            1);
  EXPECT_EQ(run({"campaign", "--spec", spec, "--serve", "0",
                 "--snapshot-every", "0"}).code,
            1);
}

TEST(Cli, WorkerRejectsBadOptions) {
  EXPECT_EQ(run({"worker"}).code, 1);  // --connect is required
  const CliRun bad = run({"worker", "--connect", "nohost"});
  EXPECT_EQ(bad.code, 1);
  EXPECT_NE(bad.err.find("host:port"), std::string::npos) << bad.err;
  EXPECT_EQ(run({"worker", "--connect", "127.0.0.1:notaport"}).code, 1);
  EXPECT_EQ(run({"worker", "--connect", "127.0.0.1:0"}).code, 1);
  EXPECT_EQ(run({"worker", "--connect", "127.0.0.1:70000"}).code, 1);
  EXPECT_EQ(run({"worker", "--connect", ":123"}).code, 1);
  EXPECT_EQ(run({"worker", "--connect", "127.0.0.1:1", "--jobs", "-1"}).code,
            1);
}

TEST(Cli, OnlineRepsAggregatesAcrossThePool) {
  const std::vector<std::string> args{
      "online", "--clusters", "5", "--connected", "--arrivals", "20",
      "--seed", "3", "--reps", "3", "--jobs", "2"};
  const CliRun r = run(args);
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("campaign 'online'"), std::string::npos);
  EXPECT_NE(r.out.find("mean_response"), std::string::npos);
  // Deterministic across worker counts (json mode strips wall times).
  std::vector<std::string> json_args{
      "online", "--clusters", "5", "--connected", "--arrivals", "20",
      "--seed", "3", "--reps", "3", "--jobs", "2", "--json"};
  const CliRun a = run(json_args);
  json_args[json_args.size() - 2] = "1";
  const CliRun b = run(json_args);
  EXPECT_EQ(a.code, 0) << a.err;
  EXPECT_EQ(a.out, b.out);
  // --jobs stays accepted when a script sweeps --reps down to 1.
  EXPECT_EQ(run({"online", "--clusters", "4", "--connected", "--arrivals",
                 "5", "--reps", "1", "--jobs", "2"})
                .code,
            0);
  // --save-workload has no single stream to save under --reps: the
  // error must say so instead of claiming an unknown option.
  const CliRun save = run({"online", "--clusters", "4", "--connected",
                           "--arrivals", "5", "--reps", "2",
                           "--save-workload", "/tmp/x.workload"});
  EXPECT_EQ(save.code, 1);
  EXPECT_NE(save.err.find("not supported with --reps"), std::string::npos)
      << save.err;
}

TEST(Cli, DynamicsRepsReportsAggregateDegradation) {
  const CliRun r = run({"dynamics", "--clusters", "5", "--connected",
                        "--arrivals", "15", "--seed", "3", "--event-rate",
                        "0.2", "--severity", "0.6", "--reps", "3",
                        "--jobs", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("scenario=static"), std::string::npos);
  EXPECT_NE(r.out.find("scenario=dynamic"), std::string::npos);
  EXPECT_NE(r.out.find("degradation over 3 replications"), std::string::npos);
}

TEST(Cli, ReduceGraph) {
  const std::string path = ::testing::TempDir() + "cli_test.graph";
  {
    std::ofstream f(path);
    f << "3 2\n0 1\n1 2\n";
  }
  const CliRun r = run({"reduce", "--graph", path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("independent set size: 2"), std::string::npos);
  EXPECT_NE(r.out.find("Lemma 1 holds: yes"), std::string::npos);
  EXPECT_NE(r.out.find("dls-platform"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, ReduceRejectsBadFile) {
  EXPECT_EQ(run({"reduce", "--graph", "/nonexistent"}).code, 1);
  const std::string path = ::testing::TempDir() + "cli_bad.graph";
  {
    std::ofstream f(path);
    f << "2 5\n0 1\n";  // truncated edge list
  }
  EXPECT_EQ(run({"reduce", "--graph", path}).code, 1);
  std::remove(path.c_str());
}

TEST(Cli, GeneratedPlatformRoundTripsThroughSolve) {
  // generate -> file -> solve reads it back and the LP bound is positive.
  const std::string path = make_platform_file();
  const CliRun r = run({"solve", "--platform", path, "--method", "lp"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.find("LP bound 0)"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, GenerateTransitAddsRouters) {
  const CliRun r = run({"generate", "--clusters", "4", "--seed", "2",
                        "--connected", "--transit", "3"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("routers 7"), std::string::npos);
}

TEST(Cli, OnlineGreedyReplayIsDeterministic) {
  const std::vector<std::string> args{
      "online", "--clusters", "6", "--connected", "--arrivals", "150",
      "--seed", "11", "--json"};
  const CliRun a = run(args);
  const CliRun b = run(args);
  EXPECT_EQ(a.code, 0) << a.err;
  EXPECT_NE(a.out.find("\"completed\":150"), std::string::npos) << a.out;
  // Identical replays modulo wall-clock measurement fields.
  const auto strip_timing = [](std::string s) {
    for (const char* key : {"\"warm_seconds\"", "\"cold_seconds\"",
                            "\"wall_seconds\""}) {
      const std::size_t at = s.find(key);
      if (at == std::string::npos) continue;
      const std::size_t end = s.find_first_of(",}", s.find(':', at));
      s.erase(at, end - at);
    }
    return s;
  };
  EXPECT_EQ(strip_timing(a.out), strip_timing(b.out));
}

TEST(Cli, OnlineRunsFromWorkloadFile) {
  const std::string plat = make_platform_file();
  const std::string wl = ::testing::TempDir() + "cli_test.workload";
  {
    std::ofstream f(wl);
    f << "dls-workload 1\n"
         "app 0.0 0 1.0 120 alpha\n"
         "app 0.5 1 1.5 80 beta\n"
         "app 0.6 0 1.0 60 gamma\n";
  }
  const CliRun r = run({"online", "--platform", plat, "--workload", wl,
                        "--method", "lprg", "--objective", "sum"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("completed"), std::string::npos);
  EXPECT_NE(r.out.find("3 arrivals"), std::string::npos);
  std::remove(plat.c_str());
  std::remove(wl.c_str());
}

TEST(Cli, OnlineSavesGeneratedWorkload) {
  const std::string wl = ::testing::TempDir() + "cli_saved.workload";
  const CliRun r = run({"online", "--clusters", "4", "--connected",
                        "--arrivals", "20", "--seed", "3",
                        "--arrival-model", "onoff", "--save-workload", wl});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream f(wl);
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header, "dls-workload 1");
  std::remove(wl.c_str());
}

TEST(Cli, OnlineSimRateModelAcceptsEveryPolicy) {
  for (const char* policy : {"paced", "maxmin", "tcp", "window"}) {
    const CliRun r = run({"online", "--clusters", "4", "--connected",
                          "--arrivals", "10", "--seed", "3", "--rate-model",
                          "sim", "--policy", policy});
    EXPECT_EQ(r.code, 0) << policy << ": " << r.err;
  }
}

TEST(Cli, OnlineRejectsBadOptions) {
  EXPECT_EQ(run({"online", "--clusters", "4", "--arrivals", "5",
                 "--method", "frob"}).code, 1);
  EXPECT_EQ(run({"online", "--clusters", "4", "--arrivals", "5",
                 "--warm", "maybe"}).code, 1);
  EXPECT_EQ(run({"online", "--clusters", "4", "--arrivals", "5",
                 "--rate-model", "quantum"}).code, 1);
  EXPECT_EQ(run({"online", "--workload", "/nonexistent"}).code, 1);
}

TEST(Cli, DynamicsReplayJsonIsBitIdentical) {
  // The acceptance bar: same seed, bit-identical metrics JSON (the json
  // output deliberately carries no wall-clock fields).
  const std::vector<std::string> args{
      "dynamics", "--clusters", "6",  "--connected", "--arrivals", "120",
      "--seed",   "11",         "--method", "lpr", "--objective", "sum",
      "--event-rate", "0.3", "--severity", "0.6", "--json"};
  const CliRun a = run(args);
  const CliRun b = run(args);
  EXPECT_EQ(a.code, 0) << a.err;
  EXPECT_EQ(a.out, b.out);
  EXPECT_NE(a.out.find("\"command\":\"dynamics\""), std::string::npos);
  EXPECT_NE(a.out.find("\"trace_events\":"), std::string::npos);
  EXPECT_NE(a.out.find("\"repaired_solves\":"), std::string::npos);
  EXPECT_NE(a.out.find("\"response_degradation\":"), std::string::npos);
}

TEST(Cli, DynamicsRunsFromEventsFile) {
  const std::string plat = make_platform_file();
  const std::string ev = ::testing::TempDir() + "cli_test.events";
  {
    std::ofstream f(ev);
    f << "dls-events 1\n"
         "event 2.0 link-down 0\n"
         "event 4.0 cluster-leave 1\n"
         "event 6.0 link-up 0\n"
         "event 8.0 cluster-join 1\n";
  }
  const CliRun r = run({"dynamics", "--platform", plat, "--events", ev,
                        "--arrivals", "30", "--seed", "5"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("4 platform events"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("degradation"), std::string::npos);
  std::remove(plat.c_str());
  std::remove(ev.c_str());
}

TEST(Cli, DynamicsSavesGeneratedEventTrace) {
  const std::string ev = ::testing::TempDir() + "cli_saved.events";
  const CliRun r = run({"dynamics", "--clusters", "4", "--connected",
                        "--arrivals", "15", "--seed", "3", "--event-rate",
                        "0.2", "--save-events", ev});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream f(ev);
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header, "dls-events 1");
  std::remove(ev.c_str());
}

TEST(Cli, DynamicsRejectsBadOptions) {
  EXPECT_EQ(run({"dynamics", "--clusters", "4", "--arrivals", "5",
                 "--severity", "3"}).code, 1);
  EXPECT_EQ(run({"dynamics", "--clusters", "4", "--arrivals", "5",
                 "--event-rate", "-1"}).code, 1);
  EXPECT_EQ(run({"dynamics", "--events", "/nonexistent"}).code, 1);
  EXPECT_EQ(run({"dynamics", "--clusters", "4", "--arrivals", "5",
                 "--frobnicate", "1"}).code, 1);
}

}  // namespace
}  // namespace dls::cli
