// End-to-end tests of the dls command-line tool through run_cli.
#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace dls::cli {
namespace {

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun run(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = run_cli(std::move(args), out, err);
  return {code, out.str(), err.str()};
}

/// Writes a platform via `generate` into a temp file; returns its path.
std::string make_platform_file() {
  const std::string path = ::testing::TempDir() + "cli_test.platform";
  const CliRun r = run({"generate", "--clusters", "4", "--seed", "9",
                        "--connected", "--out", path});
  EXPECT_EQ(r.code, 0) << r.err;
  return path;
}

TEST(Cli, NoCommandShowsUsageAndFails) {
  const CliRun r = run({});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("usage"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  const CliRun r = run({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("generate"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const CliRun r = run({"frobnicate"});
  EXPECT_EQ(r.code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, GenerateToStdout) {
  const CliRun r = run({"generate", "--clusters", "3", "--seed", "1"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("dls-platform"), std::string::npos);
  EXPECT_NE(r.out.find("cluster"), std::string::npos);
}

TEST(Cli, GenerateRejectsUnknownOption) {
  const CliRun r = run({"generate", "--clusterz", "3"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--clusterz"), std::string::npos);
}

TEST(Cli, SolveEachMethod) {
  const std::string path = make_platform_file();
  for (const char* method : {"g", "lpr", "lprg", "lprr", "lp", "exact"}) {
    const CliRun r = run({"solve", "--platform", path, "--method", method});
    EXPECT_EQ(r.code, 0) << method << ": " << r.err;
    EXPECT_NE(r.out.find("objective"), std::string::npos) << method;
    EXPECT_NE(r.out.find("LP bound"), std::string::npos) << method;
  }
  std::remove(path.c_str());
}

TEST(Cli, SolveWithScheduleAndPayoffs) {
  const std::string path = make_platform_file();
  const CliRun r = run({"solve", "--platform", path, "--objective", "sum",
                        "--payoffs", "2,1,1,0", "--schedule"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("period:"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, SolveRejectsBadInputs) {
  const std::string path = make_platform_file();
  EXPECT_EQ(run({"solve", "--platform", "/nonexistent"}).code, 1);
  EXPECT_EQ(run({"solve", "--platform", path, "--method", "magic"}).code, 1);
  EXPECT_EQ(run({"solve", "--platform", path, "--objective", "best"}).code, 1);
  EXPECT_EQ(run({"solve", "--platform", path, "--payoffs", "1,2"}).code, 1);
  std::remove(path.c_str());
}

TEST(Cli, SimulatePolicies) {
  const std::string path = make_platform_file();
  for (const char* policy : {"paced", "maxmin", "tcp", "window"}) {
    const CliRun r = run({"simulate", "--platform", path, "--policy", policy,
                          "--periods", "3"});
    EXPECT_EQ(r.code, 0) << policy << ": " << r.err;
    EXPECT_NE(r.out.find("overrun"), std::string::npos);
    EXPECT_NE(r.out.find("rate solves"), std::string::npos);
  }
  EXPECT_EQ(run({"simulate", "--platform", path, "--policy", "bogus"}).code, 1);
  std::remove(path.c_str());
}

TEST(Cli, SimulateEngineSelection) {
  const std::string path = make_platform_file();
  for (const char* engine : {"incremental", "rescan"}) {
    const CliRun r = run({"simulate", "--platform", path, "--sim-engine", engine,
                          "--periods", "3"});
    EXPECT_EQ(r.code, 0) << engine << ": " << r.err;
    EXPECT_NE(r.out.find(std::string("engine ") + engine), std::string::npos);
  }
  EXPECT_EQ(run({"simulate", "--platform", path, "--sim-engine", "warp"}).code, 1);
  std::remove(path.c_str());
}

TEST(Cli, SweepRunsCasesInParallel) {
  const CliRun r = run({"sweep", "--clusters", "4", "--cases", "3", "--jobs", "2",
                        "--seed", "5"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("3/3 cases ok"), std::string::npos);
  EXPECT_NE(r.out.find("LPRG"), std::string::npos);
  // Identical numbers regardless of worker count (determinism); the first
  // line carries wall time and is skipped.
  const CliRun serial = run({"sweep", "--clusters", "4", "--cases", "3", "--jobs",
                             "1", "--seed", "5"});
  EXPECT_EQ(serial.out.substr(serial.out.find('\n')),
            r.out.substr(r.out.find('\n')));
  EXPECT_EQ(run({"sweep", "--cases", "0"}).code, 1);
}

TEST(Cli, ReduceGraph) {
  const std::string path = ::testing::TempDir() + "cli_test.graph";
  {
    std::ofstream f(path);
    f << "3 2\n0 1\n1 2\n";
  }
  const CliRun r = run({"reduce", "--graph", path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("independent set size: 2"), std::string::npos);
  EXPECT_NE(r.out.find("Lemma 1 holds: yes"), std::string::npos);
  EXPECT_NE(r.out.find("dls-platform"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, ReduceRejectsBadFile) {
  EXPECT_EQ(run({"reduce", "--graph", "/nonexistent"}).code, 1);
  const std::string path = ::testing::TempDir() + "cli_bad.graph";
  {
    std::ofstream f(path);
    f << "2 5\n0 1\n";  // truncated edge list
  }
  EXPECT_EQ(run({"reduce", "--graph", path}).code, 1);
  std::remove(path.c_str());
}

TEST(Cli, GeneratedPlatformRoundTripsThroughSolve) {
  // generate -> file -> solve reads it back and the LP bound is positive.
  const std::string path = make_platform_file();
  const CliRun r = run({"solve", "--platform", path, "--method", "lp"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.find("LP bound 0)"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Cli, GenerateTransitAddsRouters) {
  const CliRun r = run({"generate", "--clusters", "4", "--seed", "2",
                        "--connected", "--transit", "3"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("routers 7"), std::string::npos);
}

TEST(Cli, OnlineGreedyReplayIsDeterministic) {
  const std::vector<std::string> args{
      "online", "--clusters", "6", "--connected", "--arrivals", "150",
      "--seed", "11", "--json"};
  const CliRun a = run(args);
  const CliRun b = run(args);
  EXPECT_EQ(a.code, 0) << a.err;
  EXPECT_NE(a.out.find("\"completed\":150"), std::string::npos) << a.out;
  // Identical replays modulo wall-clock measurement fields.
  const auto strip_timing = [](std::string s) {
    for (const char* key : {"\"warm_seconds\"", "\"cold_seconds\"",
                            "\"wall_seconds\""}) {
      const std::size_t at = s.find(key);
      if (at == std::string::npos) continue;
      const std::size_t end = s.find_first_of(",}", s.find(':', at));
      s.erase(at, end - at);
    }
    return s;
  };
  EXPECT_EQ(strip_timing(a.out), strip_timing(b.out));
}

TEST(Cli, OnlineRunsFromWorkloadFile) {
  const std::string plat = make_platform_file();
  const std::string wl = ::testing::TempDir() + "cli_test.workload";
  {
    std::ofstream f(wl);
    f << "dls-workload 1\n"
         "app 0.0 0 1.0 120 alpha\n"
         "app 0.5 1 1.5 80 beta\n"
         "app 0.6 0 1.0 60 gamma\n";
  }
  const CliRun r = run({"online", "--platform", plat, "--workload", wl,
                        "--method", "lprg", "--objective", "sum"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("completed"), std::string::npos);
  EXPECT_NE(r.out.find("3 arrivals"), std::string::npos);
  std::remove(plat.c_str());
  std::remove(wl.c_str());
}

TEST(Cli, OnlineSavesGeneratedWorkload) {
  const std::string wl = ::testing::TempDir() + "cli_saved.workload";
  const CliRun r = run({"online", "--clusters", "4", "--connected",
                        "--arrivals", "20", "--seed", "3",
                        "--arrival-model", "onoff", "--save-workload", wl});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream f(wl);
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header, "dls-workload 1");
  std::remove(wl.c_str());
}

TEST(Cli, OnlineSimRateModelAcceptsEveryPolicy) {
  for (const char* policy : {"paced", "maxmin", "tcp", "window"}) {
    const CliRun r = run({"online", "--clusters", "4", "--connected",
                          "--arrivals", "10", "--seed", "3", "--rate-model",
                          "sim", "--policy", policy});
    EXPECT_EQ(r.code, 0) << policy << ": " << r.err;
  }
}

TEST(Cli, OnlineRejectsBadOptions) {
  EXPECT_EQ(run({"online", "--clusters", "4", "--arrivals", "5",
                 "--method", "frob"}).code, 1);
  EXPECT_EQ(run({"online", "--clusters", "4", "--arrivals", "5",
                 "--warm", "maybe"}).code, 1);
  EXPECT_EQ(run({"online", "--clusters", "4", "--arrivals", "5",
                 "--rate-model", "quantum"}).code, 1);
  EXPECT_EQ(run({"online", "--workload", "/nonexistent"}).code, 1);
}

TEST(Cli, DynamicsReplayJsonIsBitIdentical) {
  // The acceptance bar: same seed, bit-identical metrics JSON (the json
  // output deliberately carries no wall-clock fields).
  const std::vector<std::string> args{
      "dynamics", "--clusters", "6",  "--connected", "--arrivals", "120",
      "--seed",   "11",         "--method", "lpr", "--objective", "sum",
      "--event-rate", "0.3", "--severity", "0.6", "--json"};
  const CliRun a = run(args);
  const CliRun b = run(args);
  EXPECT_EQ(a.code, 0) << a.err;
  EXPECT_EQ(a.out, b.out);
  EXPECT_NE(a.out.find("\"command\":\"dynamics\""), std::string::npos);
  EXPECT_NE(a.out.find("\"trace_events\":"), std::string::npos);
  EXPECT_NE(a.out.find("\"repaired_solves\":"), std::string::npos);
  EXPECT_NE(a.out.find("\"response_degradation\":"), std::string::npos);
}

TEST(Cli, DynamicsRunsFromEventsFile) {
  const std::string plat = make_platform_file();
  const std::string ev = ::testing::TempDir() + "cli_test.events";
  {
    std::ofstream f(ev);
    f << "dls-events 1\n"
         "event 2.0 link-down 0\n"
         "event 4.0 cluster-leave 1\n"
         "event 6.0 link-up 0\n"
         "event 8.0 cluster-join 1\n";
  }
  const CliRun r = run({"dynamics", "--platform", plat, "--events", ev,
                        "--arrivals", "30", "--seed", "5"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("4 platform events"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("degradation"), std::string::npos);
  std::remove(plat.c_str());
  std::remove(ev.c_str());
}

TEST(Cli, DynamicsSavesGeneratedEventTrace) {
  const std::string ev = ::testing::TempDir() + "cli_saved.events";
  const CliRun r = run({"dynamics", "--clusters", "4", "--connected",
                        "--arrivals", "15", "--seed", "3", "--event-rate",
                        "0.2", "--save-events", ev});
  EXPECT_EQ(r.code, 0) << r.err;
  std::ifstream f(ev);
  std::string header;
  std::getline(f, header);
  EXPECT_EQ(header, "dls-events 1");
  std::remove(ev.c_str());
}

TEST(Cli, DynamicsRejectsBadOptions) {
  EXPECT_EQ(run({"dynamics", "--clusters", "4", "--arrivals", "5",
                 "--severity", "3"}).code, 1);
  EXPECT_EQ(run({"dynamics", "--clusters", "4", "--arrivals", "5",
                 "--event-rate", "-1"}).code, 1);
  EXPECT_EQ(run({"dynamics", "--events", "/nonexistent"}).code, 1);
  EXPECT_EQ(run({"dynamics", "--clusters", "4", "--arrivals", "5",
                 "--frobnicate", "1"}).code, 1);
}

}  // namespace
}  // namespace dls::cli
