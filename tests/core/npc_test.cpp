// Tests of the §4 NP-completeness apparatus, culminating in the Theorem-1
// equivalence check: the exact optimum of the reduced platform equals the
// maximum independent set size.
#include "core/npc/reduction.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/heuristics.hpp"
#include "support/rng.hpp"

namespace dls::core::npc {
namespace {

Graph paper_example() {
  // Figure 3 of the paper: V1..V4 with edges l1=(V1,V2), l2=(V2,V3),
  // l3=(V1,V3), l4=(V3,V4) (0-indexed here).
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  return g;
}

TEST(Graph, BasicOperations) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_THROW(g.add_edge(0, 0), Error);
  EXPECT_THROW(g.add_edge(0, 1), Error);  // duplicate
  EXPECT_THROW(g.add_edge(0, 5), Error);
}

TEST(Mis, EmptyGraphTakesAllVertices) {
  Graph g(5);
  EXPECT_EQ(maximum_independent_set(g).size(), 5u);
}

TEST(Mis, CompleteGraphTakesOne) {
  Graph g(4);
  for (int i = 0; i < 4; ++i)
    for (int j = i + 1; j < 4; ++j) g.add_edge(i, j);
  EXPECT_EQ(maximum_independent_set(g).size(), 1u);
}

TEST(Mis, PathGraph) {
  // Path on 5 vertices: MIS = {0, 2, 4}.
  Graph g(5);
  for (int i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1);
  const auto mis = maximum_independent_set(g);
  EXPECT_EQ(mis.size(), 3u);
}

TEST(Mis, CycleGraph) {
  // C6: MIS size 3. C5: MIS size 2.
  Graph c6(6);
  for (int i = 0; i < 6; ++i) c6.add_edge(i, (i + 1) % 6);
  EXPECT_EQ(maximum_independent_set(c6).size(), 3u);
  Graph c5(5);
  for (int i = 0; i < 5; ++i) c5.add_edge(i, (i + 1) % 5);
  EXPECT_EQ(maximum_independent_set(c5).size(), 2u);
}

TEST(Mis, PaperExample) {
  // Figure 3 graph: {V1, V4} ... 0-indexed {0 or 1, 3} plus? MIS = {0,1}?
  // Edges: 0-1, 1-2, 0-2, 2-3. Independent: {0,3},{1,3} of size 2; adding
  // more impossible (0-1 edge). So size 2.
  const auto mis = maximum_independent_set(paper_example());
  EXPECT_EQ(mis.size(), 2u);
}

TEST(Mis, ResultIsIndependentAndMaximal) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    Graph g(n);
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (rng.bernoulli(0.4)) g.add_edge(i, j);
    const auto mis = maximum_independent_set(g);
    for (std::size_t a = 0; a < mis.size(); ++a)
      for (std::size_t b = a + 1; b < mis.size(); ++b)
        EXPECT_FALSE(g.has_edge(mis[a], mis[b]));
    // Maximal: every vertex outside has a neighbor inside (otherwise the
    // set could grow, contradicting maximality).
    for (int v = 0; v < n; ++v) {
      if (std::find(mis.begin(), mis.end(), v) != mis.end()) continue;
      bool blocked = false;
      for (int u : mis) blocked |= g.has_edge(u, v);
      EXPECT_TRUE(blocked) << "vertex " << v << " could extend the MIS";
    }
  }
}

TEST(Reduction, StructureMatchesPaper) {
  const Graph g = paper_example();
  const ReductionInstance inst = build_reduction(g);
  const auto& plat = inst.platform;
  // n+1 clusters; 1 + n + 2m routers.
  EXPECT_EQ(plat.num_clusters(), 5);
  EXPECT_EQ(plat.num_routers(), 1 + 4 + 2 * 4);
  // C0: speed 0, gateway n; others speed = gateway = 1.
  EXPECT_EQ(plat.cluster(0).speed, 0.0);
  EXPECT_EQ(plat.cluster(0).gateway_bw, 4.0);
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(plat.cluster(i).speed, 1.0);
    EXPECT_EQ(plat.cluster(i).gateway_bw, 1.0);
  }
  // All links have bw 1 and max-connect 1.
  for (int li = 0; li < plat.num_links(); ++li) {
    EXPECT_EQ(plat.link(li).bw, 1.0);
    EXPECT_EQ(plat.link(li).max_connections, 1);
  }
  // Payoffs: only the source application counts.
  EXPECT_EQ(inst.payoffs[0], 1.0);
  for (int i = 1; i <= 4; ++i) EXPECT_EQ(inst.payoffs[i], 0.0);
  // Routes exist exactly from C0 to each Ci.
  for (int i = 1; i <= 4; ++i) EXPECT_TRUE(plat.has_route(0, i));
  EXPECT_FALSE(plat.has_route(1, 2));
  EXPECT_FALSE(plat.has_route(1, 0));
}

TEST(Reduction, Lemma1OnPaperExample) {
  const Graph g = paper_example();
  EXPECT_TRUE(lemma1_holds(g, build_reduction(g)));
}

TEST(Reduction, Lemma1OnRandomGraphs) {
  Rng rng(17);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 8));
    Graph g(n);
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (rng.bernoulli(0.35)) g.add_edge(i, j);
    const ReductionInstance inst = build_reduction(g);
    EXPECT_NO_THROW(inst.platform.validate());
    EXPECT_TRUE(lemma1_holds(g, inst)) << "trial " << trial;
  }
}

/// Theorem 1, constructive direction on actual solves: the exact MILP
/// optimum of the reduced instance equals the MIS size.
TEST(Theorem1, ExactThroughputEqualsMisSize) {
  Rng rng(23);
  for (int trial = 0; trial < 12; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(2, 6));
    Graph g(n);
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (rng.bernoulli(0.4)) g.add_edge(i, j);

    const auto mis = maximum_independent_set(g);
    const ReductionInstance inst = build_reduction(g);
    SteadyStateProblem problem(inst.platform, inst.payoffs, Objective::MaxMin);
    lp::MilpOptions options;
    options.max_nodes = 50000;
    const auto exact = solve_exact(problem, options);
    ASSERT_EQ(exact.status, lp::SolveStatus::Optimal) << "trial " << trial;
    EXPECT_NEAR(exact.objective, static_cast<double>(mis.size()), 1e-5)
        << "trial " << trial << " n=" << n << " m=" << g.num_edges();
    EXPECT_TRUE(validate_allocation(problem, exact.allocation, 1e-5).ok);
  }
}

TEST(Theorem1, PaperExampleInstance) {
  const Graph g = paper_example();
  const ReductionInstance inst = build_reduction(g);
  SteadyStateProblem problem(inst.platform, inst.payoffs, Objective::MaxMin);
  const auto exact = solve_exact(problem);
  ASSERT_EQ(exact.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(exact.objective, 2.0, 1e-6);  // MIS of Figure 3 has size 2
}

TEST(Theorem1, LpRelaxationCanExceedMis) {
  // On the complete graph K3 the relaxation can split connections
  // fractionally, so LP > MIS — the integrality gap that makes the
  // problem hard.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  const ReductionInstance inst = build_reduction(g);
  SteadyStateProblem problem(inst.platform, inst.payoffs, Objective::MaxMin);
  const auto bound = lp_upper_bound(problem);
  ASSERT_EQ(bound.status, lp::SolveStatus::Optimal);
  EXPECT_GT(bound.objective, 1.0 + 1e-6);  // MIS(K3) = 1
}

}  // namespace
}  // namespace dls::core::npc
