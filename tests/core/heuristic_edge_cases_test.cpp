// Edge-case and ablation tests for the heuristics: greedy local-exhaust
// policies, one-shot LPRR rounding, linkless (same-router) routes, and
// heuristics on the NP-hardness gadget platforms.
#include <gtest/gtest.h>

#include "core/heuristics.hpp"
#include "core/npc/reduction.hpp"
#include "platform/generator.hpp"
#include "support/rng.hpp"

namespace dls::core {
namespace {

constexpr double kTol = 1e-6;

TEST(GreedyPolicy, TakeRemainingBeatsDropOnIsolatedCluster) {
  // A lone cluster: the local cap is 0 (no other cluster exists), so the
  // drop policy abandons the application while take-remaining uses the
  // full speed.
  platform::Platform plat;
  const auto r = plat.add_router();
  plat.add_cluster(100, 50, r);
  plat.compute_shortest_path_routes();
  SteadyStateProblem problem(plat, {1.0}, Objective::Sum);

  GreedyOptions take;
  const auto with_take = run_greedy(problem, take);
  EXPECT_NEAR(with_take.objective, 100.0, kTol);

  GreedyOptions drop;
  drop.local_exhaust = LocalExhaustPolicy::DropApplication;
  const auto with_drop = run_greedy(problem, drop);
  EXPECT_NEAR(with_drop.objective, 0.0, kTol);
}

TEST(GreedyPolicy, TakeRemainingWeaklyDominatesOnRandomPlatforms) {
  Rng rng(31);
  platform::GeneratorParams params;
  params.num_clusters = 7;
  params.connectivity = 0.4;
  params.mean_gateway_bw = 60;
  params.mean_backbone_bw = 15;
  params.mean_max_connections = 3;
  for (int trial = 0; trial < 15; ++trial) {
    const auto plat = generate_platform(params, rng);
    std::vector<double> payoffs(plat.num_clusters());
    for (double& p : payoffs) p = rng.uniform(0.5, 1.5);
    SteadyStateProblem problem(plat, payoffs, Objective::Sum);
    GreedyOptions drop;
    drop.local_exhaust = LocalExhaustPolicy::DropApplication;
    const auto take = run_greedy(problem);
    const auto dropped = run_greedy(problem, drop);
    EXPECT_TRUE(validate_allocation(problem, dropped.allocation).ok);
    // SUM with take-remaining can only gain: it allocates a superset of
    // local work.
    EXPECT_GE(take.objective, dropped.objective - kTol) << "trial " << trial;
  }
}

TEST(LprrOneShot, ValidAndBelowBound) {
  Rng rng(17);
  platform::GeneratorParams params;
  params.num_clusters = 6;
  params.connectivity = 0.6;
  params.mean_backbone_bw = 10;
  params.mean_max_connections = 2;
  for (int trial = 0; trial < 10; ++trial) {
    const auto plat = generate_platform(params, rng);
    std::vector<double> payoffs(plat.num_clusters());
    for (double& p : payoffs) p = rng.uniform(0.5, 1.5);
    SteadyStateProblem problem(plat, payoffs, Objective::MaxMin);
    const auto bound = lp_upper_bound(problem);

    LprrOptions oneshot;
    oneshot.resolve_between_fixings = false;
    Rng coin = rng.split();
    const auto r = run_lprr(problem, coin, oneshot);
    ASSERT_EQ(r.status, lp::SolveStatus::Optimal);
    EXPECT_TRUE(validate_allocation(problem, r.allocation, 1e-5).ok);
    EXPECT_LE(r.objective, bound.objective * (1 + 1e-5) + 1e-9);
    EXPECT_EQ(r.lp_solves, 2);  // one relaxation + one clean-up solve
  }
}

TEST(LprrOneShot, IterativeUsuallyAtLeastAsGood) {
  // Not a theorem, but across a batch the re-solving variant should win
  // on average — the very claim behind Figure 6's LPRR.
  Rng rng(23);
  platform::GeneratorParams params;
  params.num_clusters = 8;
  params.connectivity = 0.5;
  params.mean_backbone_bw = 8;
  params.mean_max_connections = 2;
  double iterative_total = 0, oneshot_total = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto plat = generate_platform(params, rng);
    std::vector<double> payoffs(plat.num_clusters());
    for (double& p : payoffs) p = rng.uniform(0.5, 1.5);
    SteadyStateProblem problem(plat, payoffs, Objective::MaxMin);
    Rng c1 = rng.split(), c2 = rng.split();
    iterative_total += run_lprr(problem, c1).objective;
    LprrOptions oneshot;
    oneshot.resolve_between_fixings = false;
    oneshot_total += run_lprr(problem, c2, oneshot).objective;
  }
  EXPECT_GE(iterative_total, oneshot_total - kTol);
}

TEST(LinklessRoutes, SameRouterClustersExchangeFreely) {
  // Two clusters on one router: the route exists but crosses no backbone
  // link, so only gateways and speeds constrain the exchange and no beta
  // is needed.
  platform::Platform plat;
  const auto r = plat.add_router();
  plat.add_cluster(0, 30, r, "diskless-source");   // no CPU
  plat.add_cluster(100, 50, r, "compute");
  plat.compute_shortest_path_routes();
  SteadyStateProblem problem(plat, {1.0, 0.0}, Objective::Sum);

  const int route = problem.route_id(0, 1);
  ASSERT_GE(route, 0);
  EXPECT_FALSE(problem.routes()[route].needs_beta);

  const auto bound = lp_upper_bound(problem);
  EXPECT_NEAR(bound.objective, 30.0, kTol);  // source gateway binds

  const auto g = run_greedy(problem);
  const auto lprg = run_lprg(problem);
  for (const auto* h : {&g, &lprg}) {
    EXPECT_TRUE(validate_allocation(problem, h->allocation).ok);
    EXPECT_NEAR(h->objective, 30.0, kTol);
    EXPECT_NEAR(h->allocation.beta(0, 1), 0.0, kTol);  // no connections used
  }
}

TEST(NpcGadget, HeuristicsStayWithinExactOptimum) {
  // The reduction platforms are adversarial (all links max-connect 1);
  // every heuristic must stay valid and below the MIS-sized optimum.
  Rng rng(41);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(3, 5));
    npc::Graph g(n);
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (rng.bernoulli(0.5)) g.add_edge(i, j);
    const auto inst = npc::build_reduction(g);
    SteadyStateProblem problem(inst.platform, inst.payoffs, Objective::MaxMin);
    const double mis = static_cast<double>(npc::maximum_independent_set(g).size());

    const auto greedy = run_greedy(problem);
    Rng coin = rng.split();
    const auto lprr = run_lprr(problem, coin);
    for (const auto* h : {&greedy, &lprr}) {
      EXPECT_TRUE(validate_allocation(problem, h->allocation, 1e-5).ok);
      EXPECT_LE(h->objective, mis + kTol);
    }
    // Greedy on this gadget is actually optimal: it opens disjoint routes
    // first-come and each succeeds or is blocked exactly as in the
    // independent-set greedy. Not asserted (not proven), but it should
    // at least find one route.
    if (mis >= 1.0) EXPECT_GE(greedy.objective, 1.0 - kTol);
  }
}

TEST(Validation, LprAllocationsAlwaysIntegral) {
  Rng rng(53);
  platform::GeneratorParams params;
  params.num_clusters = 6;
  params.connectivity = 0.5;
  params.mean_backbone_bw = 12;
  params.mean_max_connections = 3;
  for (int trial = 0; trial < 10; ++trial) {
    const auto plat = generate_platform(params, rng);
    std::vector<double> payoffs(plat.num_clusters());
    for (double& p : payoffs) p = rng.uniform(0.5, 1.5);
    for (Objective obj : {Objective::Sum, Objective::MaxMin}) {
      SteadyStateProblem problem(plat, payoffs, obj);
      const auto lpr = run_lpr(problem);
      ASSERT_EQ(lpr.status, lp::SolveStatus::Optimal);
      EXPECT_TRUE(lpr.allocation.has_integral_betas());
      EXPECT_TRUE(validate_allocation(problem, lpr.allocation, 1e-5).ok);
    }
  }
}

TEST(DegeneratePlatforms, SingleClusterModelHasNoEmptyRows) {
  // A lone cluster routes nothing: the model must carry only the speed
  // row (no degenerate 0 <= g_k gateway rows), and every method must
  // return the local-only optimum.
  platform::Platform plat;
  plat.add_cluster(100, 50, plat.add_router());
  plat.compute_shortest_path_routes();
  for (const Objective obj : {Objective::Sum, Objective::MaxMin}) {
    SteadyStateProblem problem(plat, {1.0}, obj);
    const auto reduced = problem.build_reduced();
    for (int c = 0; c < reduced.model.num_constraints(); ++c)
      EXPECT_FALSE(reduced.model.row(c).empty()) << "row " << c;
    const int expected_rows = obj == Objective::MaxMin ? 2 : 1;  // speed (+fair)
    EXPECT_EQ(reduced.model.num_constraints(), expected_rows);
    const auto full = problem.build_full(false);
    for (int c = 0; c < full.model.num_constraints(); ++c)
      EXPECT_FALSE(full.model.row(c).empty()) << "row " << c;

    const auto g = run_greedy(problem);
    const auto lprg = run_lprg(problem);
    const auto bound = lp_upper_bound(problem);
    EXPECT_NEAR(g.objective, 100.0, kTol);
    EXPECT_NEAR(lprg.objective, 100.0, kTol);
    EXPECT_NEAR(bound.objective, 100.0, kTol);
    EXPECT_TRUE(validate_allocation(problem, g.allocation).ok);
  }
}

TEST(DegeneratePlatforms, DisconnectedClustersSolveLocalOnly) {
  // Four clusters, no links at all: every method degrades to purely
  // local work and the reduced model carries no gateway or link rows.
  platform::Platform plat;
  for (int i = 0; i < 4; ++i) plat.add_cluster(50.0 + 10.0 * i, 40, plat.add_router());
  plat.compute_shortest_path_routes();
  const std::vector<double> payoffs{1.0, 2.0, 1.0, 0.5};
  for (const Objective obj : {Objective::Sum, Objective::MaxMin}) {
    SteadyStateProblem problem(plat, payoffs, obj);
    const auto reduced = problem.build_reduced();
    for (int c = 0; c < reduced.model.num_constraints(); ++c)
      EXPECT_FALSE(reduced.model.row(c).empty());
    const int fair_rows = obj == Objective::MaxMin ? 4 : 0;
    EXPECT_EQ(reduced.model.num_constraints(), 4 + fair_rows);  // speed rows only

    // payoff * speed products: 50, 120, 70, 40 -> Sum 280, MaxMin 40.
    const double optimum = obj == Objective::Sum ? 280.0 : 40.0;
    for (const auto& result :
         {run_greedy(problem), run_lpr(problem), run_lprg(problem)}) {
      ASSERT_EQ(result.status, lp::SolveStatus::Optimal);
      EXPECT_TRUE(validate_allocation(problem, result.allocation).ok);
      EXPECT_NEAR(result.objective, optimum, kTol);
      for (int k = 0; k < 4; ++k)
        for (int l = 0; l < 4; ++l)
          if (k != l) EXPECT_EQ(result.allocation.alpha(k, l), 0.0);
    }
    // The greedy's take-remaining policy additionally exhausts every
    // cluster's own speed.
    const auto g = run_greedy(problem);
    for (int k = 0; k < 4; ++k)
      EXPECT_NEAR(g.allocation.alpha(k, k), plat.cluster(k).speed, kTol);
  }
}

}  // namespace
}  // namespace dls::core
