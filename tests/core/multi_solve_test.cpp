// Multi-load joint solves (ISSUE 8): the oracle checks. On an
// uncontended platform the joint N-load LP must reproduce each load's
// single-load optimum; canonical sets must match the original
// single-load bound; caps and data ratios must bind exactly where the
// model says they do.
#include "core/multi_solve.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/heuristics.hpp"
#include "core/problem.hpp"
#include "core/test_platforms.hpp"
#include "platform/generator.hpp"

namespace dls::core {
namespace {

constexpr double kTol = 1e-9;

/// Two disjoint source-and-workers islands: no shared link, no shared
/// CPU — the joint LP decomposes block-diagonally. Island optimum is 4
/// (see testing::source_and_two_workers: one bw-2 connection to each
/// worker, no local compute).
platform::Platform two_islands() {
  platform::Platform p;
  for (int island = 0; island < 2; ++island) {
    const std::string tag = std::to_string(island);
    const auto r0 = p.add_router("r0_" + tag);
    const auto r1 = p.add_router("r1_" + tag);
    const auto r2 = p.add_router("r2_" + tag);
    p.add_cluster(0, 10, r0, "source" + tag);
    p.add_cluster(5, 5, r1, "w1_" + tag);
    p.add_cluster(5, 5, r2, "w2_" + tag);
    p.add_backbone(r0, r1, 2, 1, "l1_" + tag);
    p.add_backbone(r0, r2, 2, 1, "l2_" + tag);
  }
  p.compute_shortest_path_routes();
  return p;
}

TEST(MultiSolve, UncontendedJointReproducesSingleLoadOptima) {
  const platform::Platform plat = two_islands();
  LoadSet joint;
  for (const int source : {0, 3}) {  // the two island sources
    LoadSpec load;
    load.source = source;
    joint.loads.push_back(load);
  }

  // Reference: each load solved alone on the same platform.
  std::vector<double> alone;
  for (const LoadSpec& load : joint.loads) {
    LoadSet one;
    one.loads.push_back(load);
    const MultiLoadSolution sol = solve_loads(plat, one);
    ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
    alone.push_back(sol.throughput[0]);
    EXPECT_NEAR(sol.throughput[0], 4.0, kTol);
  }

  for (const MultiObjective objective :
       {MultiObjective::WeightedSum, MultiObjective::MaxMin,
        MultiObjective::PropFair}) {
    MultiLoadSolveOptions options;
    options.objective = objective;
    const MultiLoadSolution sol = solve_loads(plat, joint, options);
    ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
    ASSERT_EQ(sol.throughput.size(), 2u);
    for (std::size_t j = 0; j < alone.size(); ++j)
      EXPECT_NEAR(sol.throughput[j], alone[j], kTol)
          << "objective " << to_string(objective) << ", load " << j;
  }
}

TEST(MultiSolve, CanonicalSetMatchesSingleLoadBound) {
  platform::GeneratorParams params;
  params.num_clusters = 8;
  params.ensure_connected = true;
  Rng rng(11);
  const platform::Platform plat = generate_platform(params, rng);
  const std::vector<double> payoffs = {1.0, 0.7, 1.3, 0.0, 1.0, 0.4, 2.0, 1.0};

  {
    const SteadyStateProblem single(plat, payoffs, Objective::Sum);
    const auto bound = lp_upper_bound(single);
    ASSERT_EQ(bound.status, lp::SolveStatus::Optimal);
    MultiLoadSolveOptions options;
    options.objective = MultiObjective::WeightedSum;
    const MultiLoadSolution sol =
        solve_loads(plat, LoadSet::from_payoffs(payoffs), options);
    ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
    EXPECT_DOUBLE_EQ(sol.objective, bound.objective);
  }
  {
    const SteadyStateProblem single(plat, payoffs, Objective::MaxMin);
    const auto bound = lp_upper_bound(single);
    ASSERT_EQ(bound.status, lp::SolveStatus::Optimal);
    MultiLoadSolveOptions options;
    options.objective = MultiObjective::MaxMin;
    const MultiLoadSolution sol =
        solve_loads(plat, LoadSet::from_payoffs(payoffs), options);
    ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
    EXPECT_DOUBLE_EQ(sol.objective, bound.objective);
  }
}

TEST(MultiSolve, CapBindsAggregateThroughput) {
  const platform::Platform plat = testing::single_cluster();  // optimum 100
  LoadSet set;
  LoadSpec load;
  load.source = 0;
  load.cap = 40.0;
  set.loads.push_back(load);
  const MultiLoadSolution sol = solve_loads(plat, set);
  ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(sol.throughput[0], 40.0, kTol);

  // A cap above the platform optimum does not bind.
  set.loads[0].cap = 400.0;
  const MultiLoadSolution loose = solve_loads(plat, set);
  ASSERT_EQ(loose.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(loose.throughput[0], 100.0, kTol);
}

TEST(MultiSolve, DataRatioScalesShippedBytes) {
  // source_and_two_workers optimum is 4, fully network-bound (bw-2
  // connection to each worker). Doubling bytes-per-unit halves it.
  const platform::Platform plat = testing::source_and_two_workers();
  LoadSet set;
  LoadSpec load;
  load.source = 0;
  load.data_ratio = 2.0;
  set.loads.push_back(load);
  const MultiLoadSolution sol = solve_loads(plat, set);
  ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(sol.throughput[0], 2.0, kTol);
}

TEST(MultiSolve, TwoLoadsShareOneClustersCycles) {
  // Both loads live on the single cluster: they split its 100
  // cycles/sec. MaxMin splits evenly; weighted sum totals 100.
  const platform::Platform plat = testing::single_cluster();
  LoadSet set;
  set.loads.resize(2);
  MultiLoadSolveOptions options;
  options.objective = MultiObjective::MaxMin;
  const MultiLoadSolution sol = solve_loads(plat, set, options);
  ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(sol.throughput[0], 50.0, kTol);
  EXPECT_NEAR(sol.throughput[1], 50.0, kTol);
}

TEST(MultiSolve, ValidateRejectsBadLoadSets) {
  const int k = 2;
  LoadSet set;
  set.loads.resize(1);
  set.loads[0].source = 5;
  EXPECT_THROW(set.validate(k), Error);

  set.loads[0].source = 0;
  set.loads[0].weight = -1.0;
  EXPECT_THROW(set.validate(k), Error);

  set.loads[0].weight = 1.0;
  set.loads[0].data_ratio = 0.0;
  EXPECT_THROW(set.validate(k), Error);

  set.loads[0].data_ratio = 1.0;
  set.loads[0].cap = -3.0;
  EXPECT_THROW(set.validate(k), Error);

  set.loads[0].cap = 1.0;
  set.loads[0].weight = 0.0;  // no positive-weight load left
  EXPECT_THROW(set.validate(k), Error);

  set.loads[0].weight = 1.0;
  EXPECT_NO_THROW(set.validate(k));
  EXPECT_THROW((void)solve_loads(testing::single_cluster(), LoadSet{}), Error);
}

TEST(MultiSolve, CanonicalDetection) {
  EXPECT_TRUE(LoadSet::from_payoffs({1.0, 2.0}).canonical(2));
  LoadSet set = LoadSet::from_payoffs({1.0, 2.0});
  set.loads[0].data_ratio = 1.5;
  EXPECT_FALSE(set.canonical(2));
  LoadSet swapped = LoadSet::from_payoffs({1.0, 2.0});
  std::swap(swapped.loads[0], swapped.loads[1]);
  EXPECT_FALSE(swapped.canonical(2));
}

}  // namespace
}  // namespace dls::core
