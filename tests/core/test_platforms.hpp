// Shared hand-built platforms for core tests with known-by-hand optima.
#pragma once

#include "platform/platform.hpp"

namespace dls::core::testing {

/// One cluster: speed 100, gateway 50. Optimum = 100 for a payoff-1 app.
inline platform::Platform single_cluster() {
  platform::Platform p;
  const auto r = p.add_router("r0");
  p.add_cluster(100, 50, r, "C0");
  p.compute_shortest_path_routes();
  return p;
}

/// Two clusters (speed 100 each, gateways 50/60) joined by one backbone
/// link (bw 10 per connection, max-connect 4). Exchanging load cannot
/// help: SUM optimum 200, MAXMIN optimum 100.
inline platform::Platform two_symmetric_clusters() {
  platform::Platform p;
  const auto r0 = p.add_router("r0");
  const auto r1 = p.add_router("r1");
  p.add_cluster(100, 50, r0, "C0");
  p.add_cluster(100, 60, r1, "C1");
  p.add_backbone(r0, r1, 10, 4, "wan");
  p.compute_shortest_path_routes();
  return p;
}

/// Source/worker star: C0 has all the data but no CPU (speed 0, gateway
/// 10); two workers (speed 5, gateway 5) behind separate links of bw 2 /
/// max-connect 1. With payoffs (1, 0, 0): optimum alpha_0 = 4
/// (one connection of bandwidth 2 to each worker).
inline platform::Platform source_and_two_workers() {
  platform::Platform p;
  const auto r0 = p.add_router("r0");
  const auto r1 = p.add_router("r1");
  const auto r2 = p.add_router("r2");
  p.add_cluster(0, 10, r0, "source");
  p.add_cluster(5, 5, r1, "w1");
  p.add_cluster(5, 5, r2, "w2");
  p.add_backbone(r0, r1, 2, 1, "l1");
  p.add_backbone(r0, r2, 2, 1, "l2");
  p.compute_shortest_path_routes();
  return p;
}

/// A platform where fractional betas matter: one link with bw 4 and
/// max-connect 1 carries the only remote route, and the source can feed
/// 6/time-unit. LP ships 4 (beta = 1), exact too; but with gateway 6 the
/// relaxed beta would be 1.5 if maxcon allowed: used for rounding tests.
inline platform::Platform rounding_sensitive() {
  platform::Platform p;
  const auto r0 = p.add_router("r0");
  const auto r1 = p.add_router("r1");
  p.add_cluster(0, 6, r0, "src");    // no local compute
  p.add_cluster(10, 6, r1, "sink");  // plenty of CPU
  p.add_backbone(r0, r1, 4, 3, "l");
  p.compute_shortest_path_routes();
  return p;
}

}  // namespace dls::core::testing
