#include "core/problem.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lp/simplex.hpp"
#include "platform/generator.hpp"
#include "support/rng.hpp"
#include "test_platforms.hpp"

namespace dls::core {
namespace {

constexpr double kTol = 1e-5;

TEST(Problem, RouteEnumeration) {
  const auto plat = testing::two_symmetric_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  // Local 0, local 1, 0->1, 1->0.
  EXPECT_EQ(problem.routes().size(), 4u);
  EXPECT_GE(problem.route_id(0, 0), 0);
  EXPECT_GE(problem.route_id(0, 1), 0);
  const auto& r01 = problem.routes()[problem.route_id(0, 1)];
  EXPECT_TRUE(r01.needs_beta);
  EXPECT_DOUBLE_EQ(r01.pbw, 10.0);
  const auto& r00 = problem.routes()[problem.route_id(0, 0)];
  EXPECT_FALSE(r00.needs_beta);
}

TEST(Problem, RejectsBadPayoffs) {
  const auto plat = testing::single_cluster();
  EXPECT_THROW(SteadyStateProblem(plat, {1.0, 1.0}, Objective::Sum), Error);
  EXPECT_THROW(SteadyStateProblem(plat, {-1.0}, Objective::Sum), Error);
  EXPECT_THROW(SteadyStateProblem(plat, {0.0}, Objective::Sum), Error);  // no app
}

TEST(Problem, SingleClusterOptimum) {
  const auto plat = testing::single_cluster();
  SteadyStateProblem problem(plat, {1.0}, Objective::Sum);
  const auto reduced = problem.build_reduced();
  const auto sol = lp::SimplexSolver().solve(reduced.model);
  ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 100.0, kTol);
}

TEST(Problem, TwoClusterSumOptimum) {
  const auto plat = testing::two_symmetric_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  const auto reduced = problem.build_reduced();
  const auto sol = lp::SimplexSolver().solve(reduced.model);
  ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 200.0, kTol);
}

TEST(Problem, TwoClusterMaxMinOptimum) {
  const auto plat = testing::two_symmetric_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::MaxMin);
  const auto reduced = problem.build_reduced();
  ASSERT_GE(reduced.t_var, 0);
  const auto sol = lp::SimplexSolver().solve(reduced.model);
  ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 100.0, kTol);
}

TEST(Problem, SourceWorkersOptimum) {
  const auto plat = testing::source_and_two_workers();
  SteadyStateProblem problem(plat, {1.0, 0.0, 0.0}, Objective::MaxMin);
  const auto reduced = problem.build_reduced();
  const auto sol = lp::SimplexSolver().solve(reduced.model);
  ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 4.0, kTol);  // one bw-2 connection per worker
}

TEST(Problem, PayoffWeightsScaleMaxMin) {
  // With payoffs (2, 1), MAXMIN equalizes 2*alpha_0 = alpha_1 = t, so the
  // compute budget gives alpha_0 + alpha_1 = 1.5 t <= 200 -> t <= 400/3.
  // The bound is reachable: A_0 computes 200/3 locally, A_1 computes 100
  // locally and ships 100/3 to cluster 0 (within link cap 40 and g_0 50).
  const auto plat = testing::two_symmetric_clusters();
  SteadyStateProblem problem(plat, {2.0, 1.0}, Objective::MaxMin);
  const auto sol = lp::SimplexSolver().solve(problem.build_reduced().model);
  ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(sol.objective, 400.0 / 3.0, kTol);
}

TEST(Problem, BetaFixingCapsAlpha) {
  const auto plat = testing::rounding_sensitive();
  SteadyStateProblem problem(plat, {1.0, 0.0}, Objective::Sum);
  const int r01 = problem.route_id(0, 1);
  ASSERT_GE(r01, 0);

  // Free: alpha_{0,1} <= gateway 6 (maxcon 3 * bw 4 = 12 not binding).
  const auto free_sol = lp::SimplexSolver().solve(problem.build_reduced().model);
  ASSERT_EQ(free_sol.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(free_sol.objective, 6.0, kTol);

  // Fixed beta = 1: alpha <= 4.
  const auto fixed = problem.build_reduced({{r01, 1}});
  const auto fixed_sol = lp::SimplexSolver().solve(fixed.model);
  ASSERT_EQ(fixed_sol.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(fixed_sol.objective, 4.0, kTol);

  // Fixed beta = 0: nothing moves.
  const auto zero_sol =
      lp::SimplexSolver().solve(problem.build_reduced({{r01, 0}}).model);
  ASSERT_EQ(zero_sol.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(zero_sol.objective, 0.0, kTol);
}

TEST(Problem, WithPayoffsSharesRoutesAndRevalidates) {
  const auto plat = testing::two_symmetric_clusters();
  const SteadyStateProblem base(plat, {1.0, 1.0}, Objective::Sum);
  const SteadyStateProblem swapped = base.with_payoffs({0.0, 2.0});
  EXPECT_EQ(&swapped.routes(), &base.routes());  // shared table, no rebuild
  EXPECT_EQ(swapped.payoffs()[1], 2.0);
  EXPECT_THROW((void)base.with_payoffs({0.0, 0.0}), Error);
  EXPECT_THROW((void)base.with_payoffs({1.0}), Error);
}

TEST(Problem, UpdateReducedPayoffsMatchesFreshBuild) {
  platform::GeneratorParams params;
  params.num_clusters = 6;
  params.ensure_connected = true;
  Rng rng(3);
  const auto plat = generate_platform(params, rng);
  const SteadyStateProblem base(plat, std::vector<double>(6, 1.0),
                                Objective::Sum);
  auto cached = base.build_reduced();
  const std::vector<double> payoffs{0.0, 1.5, 0.7, 0.0, 1.0, 2.0};
  const SteadyStateProblem repayoffed = base.with_payoffs(payoffs);
  repayoffed.update_reduced_payoffs(cached);
  const auto fresh = repayoffed.build_reduced();
  const lp::Solution a = lp::SimplexSolver().solve(cached.model);
  const lp::Solution b = lp::SimplexSolver().solve(fresh.model);
  ASSERT_EQ(a.status, lp::SolveStatus::Optimal);
  ASSERT_EQ(b.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(a.objective, b.objective, kTol);
}

TEST(Problem, UpdateReducedPayoffsRejectsFixedModels) {
  const auto plat = testing::two_symmetric_clusters();
  const SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  const int r01 = problem.route_id(0, 1);
  auto fixed = problem.build_reduced({{r01, 1}});
  // Re-payoffing would overwrite the pinned (7e) alpha caps.
  EXPECT_THROW(problem.update_reduced_payoffs(fixed), Error);
  // MaxMin models reshape per support; also rejected.
  const SteadyStateProblem maxmin(plat, {1.0, 1.0}, Objective::MaxMin);
  auto mm = maxmin.build_reduced();
  EXPECT_THROW(maxmin.update_reduced_payoffs(mm), Error);
}

TEST(Problem, FixingRejectsInvalidRoute) {
  const auto plat = testing::two_symmetric_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  const int local = problem.route_id(0, 0);
  EXPECT_THROW(problem.build_reduced({{local, 1}}), Error);  // local: no beta
  EXPECT_THROW(problem.build_reduced({{-1, 1}}), Error);
  EXPECT_THROW(problem.build_reduced({{problem.route_id(0, 1), -2}}), Error);
}

TEST(Problem, FullEqualsReducedOnHandBuilt) {
  for (Objective obj : {Objective::Sum, Objective::MaxMin}) {
    const auto plat = testing::two_symmetric_clusters();
    SteadyStateProblem problem(plat, {1.0, 1.0}, obj);
    const auto red = lp::SimplexSolver().solve(problem.build_reduced().model);
    const auto full = lp::SimplexSolver().solve(problem.build_full(false).model);
    ASSERT_EQ(red.status, lp::SolveStatus::Optimal);
    ASSERT_EQ(full.status, lp::SolveStatus::Optimal);
    EXPECT_NEAR(red.objective, full.objective, kTol);
  }
}

TEST(Problem, FullEqualsReducedOnRandomPlatforms) {
  // The beta-substitution argument (DESIGN.md): both formulations of the
  // rational relaxation have the same optimum.
  Rng rng(2025);
  platform::GeneratorParams params;
  params.num_clusters = 6;
  params.connectivity = 0.5;
  params.mean_backbone_bw = 20;
  params.mean_max_connections = 4;
  params.mean_gateway_bw = 120;
  for (int trial = 0; trial < 25; ++trial) {
    const auto plat = generate_platform(params, rng);
    std::vector<double> payoffs(plat.num_clusters(), 1.0);
    payoffs[rng.index(payoffs.size())] = 2.0;
    const Objective obj = trial % 2 == 0 ? Objective::Sum : Objective::MaxMin;
    SteadyStateProblem problem(plat, payoffs, obj);
    const auto red = lp::SimplexSolver().solve(problem.build_reduced().model);
    const auto full = lp::SimplexSolver().solve(problem.build_full(false).model);
    ASSERT_EQ(red.status, lp::SolveStatus::Optimal) << "trial " << trial;
    ASSERT_EQ(full.status, lp::SolveStatus::Optimal) << "trial " << trial;
    EXPECT_NEAR(red.objective, full.objective,
                kTol * (1.0 + std::fabs(red.objective)))
        << "trial " << trial << " obj " << to_string(obj);
  }
}

TEST(Problem, PayoffZeroClustersAreFrozen) {
  const auto plat = testing::two_symmetric_clusters();
  SteadyStateProblem problem(plat, {1.0, 0.0}, Objective::Sum);
  const auto reduced = problem.build_reduced();
  const auto sol = lp::SimplexSolver().solve(reduced.model);
  ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
  const Allocation alloc = problem.allocation_from_reduced(reduced, sol.x);
  // Cluster 1 sends nothing but may receive: optimum ships 40 over the
  // link (maxcon 4 * bw 10, gateway 50 not binding) + 100 local = 140.
  EXPECT_NEAR(sol.objective, 140.0, kTol);
  EXPECT_NEAR(alloc.total_alpha(1), 0.0, kTol);
  EXPECT_NEAR(alloc.alpha(0, 1), 40.0, kTol);
}

TEST(Problem, ObjectiveOfMatchesLpObjective) {
  const auto plat = testing::two_symmetric_clusters();
  for (Objective obj : {Objective::Sum, Objective::MaxMin}) {
    SteadyStateProblem problem(plat, {1.5, 1.0}, obj);
    const auto reduced = problem.build_reduced();
    const auto sol = lp::SimplexSolver().solve(reduced.model);
    ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
    const Allocation alloc = problem.allocation_from_reduced(reduced, sol.x);
    EXPECT_NEAR(problem.objective_of(alloc), sol.objective, kTol);
  }
}

TEST(Problem, MaxMinIgnoresZeroPayoffApps) {
  const auto plat = testing::source_and_two_workers();
  SteadyStateProblem problem(plat, {1.0, 0.0, 0.0}, Objective::MaxMin);
  Allocation alloc(3);
  alloc.set_alpha(0, 1, 2.0);
  alloc.set_beta(0, 1, 1.0);
  // min over positive-payoff apps only: alpha_0 * 1 = 2 (workers excluded).
  EXPECT_NEAR(problem.objective_of(alloc), 2.0, kTol);
}

TEST(Problem, ToStringObjectives) {
  EXPECT_EQ(to_string(Objective::Sum), "SUM");
  EXPECT_EQ(to_string(Objective::MaxMin), "MAXMIN");
}

}  // namespace
}  // namespace dls::core
