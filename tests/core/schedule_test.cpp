#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/heuristics.hpp"
#include "platform/generator.hpp"
#include "support/rng.hpp"
#include "test_platforms.hpp"

namespace dls::core {
namespace {

TEST(Schedule, IntegerRatesGivePeriodOne) {
  const auto plat = testing::source_and_two_workers();
  SteadyStateProblem problem(plat, {1.0, 0.0, 0.0}, Objective::MaxMin);
  const auto g = run_greedy(problem);  // alpha = 2 on each route, integers
  const auto sched = build_periodic_schedule(problem, g.allocation);
  EXPECT_EQ(sched.period, 1);
  EXPECT_NEAR(sched.throughput(0), 4.0, 1e-9);
  EXPECT_TRUE(validate_schedule(problem, sched).ok);
}

TEST(Schedule, FractionalRatesUseLcmPeriod) {
  const auto plat = testing::two_symmetric_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  Allocation alloc(2);
  alloc.set_alpha(0, 0, 10.5);        // denominator 2
  alloc.set_alpha(1, 1, 1.0 / 3.0);   // denominator 3
  const auto sched = build_periodic_schedule(problem, alloc);
  EXPECT_EQ(sched.period, 6);
  EXPECT_EQ(sched.load_per_period(0), 63);
  EXPECT_EQ(sched.load_per_period(1), 2);
  EXPECT_TRUE(validate_schedule(problem, sched).ok);
}

TEST(Schedule, TransfersCarryConnections) {
  const auto plat = testing::two_symmetric_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  Allocation alloc(2);
  alloc.set_alpha(0, 1, 15.0);
  alloc.set_beta(0, 1, 2.0);
  const auto sched = build_periodic_schedule(problem, alloc);
  ASSERT_EQ(sched.transfers.size(), 1u);
  EXPECT_EQ(sched.transfers[0].from, 0);
  EXPECT_EQ(sched.transfers[0].to, 1);
  EXPECT_EQ(sched.transfers[0].connections, 2);
  EXPECT_EQ(sched.transfers[0].units, 15);
  EXPECT_TRUE(validate_schedule(problem, sched).ok);
}

TEST(Schedule, RejectsInvalidAllocation) {
  const auto plat = testing::two_symmetric_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  Allocation bad(2);
  bad.set_alpha(0, 0, 500.0);  // exceeds speed
  EXPECT_THROW(build_periodic_schedule(problem, bad), Error);
}

TEST(Schedule, ThroughputNeverExceedsAllocation) {
  Rng rng(11);
  platform::GeneratorParams params;
  params.num_clusters = 6;
  params.connectivity = 0.6;
  params.mean_backbone_bw = 15;
  params.mean_max_connections = 4;
  for (int trial = 0; trial < 20; ++trial) {
    const auto plat = generate_platform(params, rng);
    std::vector<double> payoffs(plat.num_clusters(), 1.0);
    SteadyStateProblem problem(plat, payoffs, Objective::MaxMin);
    const auto h = run_lprg(problem);
    ASSERT_EQ(h.status, lp::SolveStatus::Optimal);
    const auto sched = build_periodic_schedule(problem, h.allocation);
    EXPECT_TRUE(validate_schedule(problem, sched).ok) << "trial " << trial;
    for (int k = 0; k < plat.num_clusters(); ++k) {
      const double scheduled = sched.throughput(k);
      const double allocated = h.allocation.total_alpha(k);
      EXPECT_LE(scheduled, allocated + 1e-9);
      // Loss below K / max_denominator per application.
      EXPECT_GE(scheduled, allocated - plat.num_clusters() / 1000.0 - 1e-9);
    }
  }
}

TEST(Schedule, TighterDenominatorBoundLosesMoreThroughput) {
  const auto plat = testing::two_symmetric_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  Allocation alloc(2);
  alloc.set_alpha(0, 0, 99.9137);
  ScheduleOptions coarse;
  coarse.max_denominator = 10;
  ScheduleOptions fine;
  fine.max_denominator = 100000;
  const auto sc = build_periodic_schedule(problem, alloc, coarse);
  const auto sf = build_periodic_schedule(problem, alloc, fine);
  EXPECT_LE(sc.throughput(0), alloc.alpha(0, 0) + 1e-12);
  EXPECT_LE(sf.throughput(0), alloc.alpha(0, 0) + 1e-12);
  EXPECT_GE(sf.throughput(0), sc.throughput(0));
  EXPECT_NEAR(sf.throughput(0), 99.9137, 1e-4);
}

TEST(Schedule, CommonDenominatorFallbackBoundsPeriod) {
  // Many awkward rates whose lcm would blow past max_period.
  const int n = 8;
  platform::Platform plat;
  for (int i = 0; i < n; ++i) {
    const auto r = plat.add_router();
    plat.add_cluster(1000, 10, r);
  }
  plat.compute_shortest_path_routes();
  SteadyStateProblem problem(plat, std::vector<double>(n, 1.0), Objective::Sum);
  Allocation alloc(n);
  // Rates 1/p for distinct primes: lcm = product of primes = huge.
  const int primes[] = {997, 991, 983, 977, 971, 967, 953, 947};
  for (int i = 0; i < n; ++i) alloc.set_alpha(i, i, 1.0 / primes[i]);
  ScheduleOptions opt;
  opt.max_denominator = 1000;
  opt.max_period = 1'000'000;  // forces the fallback
  const auto sched = build_periodic_schedule(problem, alloc, opt);
  EXPECT_EQ(sched.period, 1000);
  EXPECT_TRUE(validate_schedule(problem, sched).ok);
}

TEST(Schedule, FallbackFloorsStrictlyAtIntegerBoundaries) {
  // Regression: the common-denominator fallback used to compute
  // floor(a * period + 1e-9), which rounds a rate sitting within epsilon
  // *below* an integer up — violating the round-down capacity invariant
  // (DESIGN.md section 4). The boundary rate here is 5/period minus
  // 1e-13: the old code scheduled 5 units (throughput above the
  // allocation), the strict floor schedules 4.
  const int n = 2;
  platform::Platform plat;
  for (int i = 0; i < n; ++i) {
    const auto r = plat.add_router();
    plat.add_cluster(1000, 10, r);
  }
  plat.compute_shortest_path_routes();
  SteadyStateProblem problem(plat, std::vector<double>(n, 1.0), Objective::Sum);
  Allocation alloc(n);
  alloc.set_alpha(0, 0, 1.0 / 997.0);  // prime denominator forces the fallback
  const double boundary = (5.0 - 1e-10) / 1000.0;  // a * 1000 = 5 - 1e-10
  alloc.set_alpha(1, 1, boundary);
  ScheduleOptions opt;
  opt.max_denominator = 1000;
  opt.max_period = 500;  // lcm(997, ...) cannot fit: fallback engages
  const auto sched = build_periodic_schedule(problem, alloc, opt);
  ASSERT_EQ(sched.period, 1000);
  EXPECT_EQ(sched.load_per_period(1), 4);  // floor, not round-to-nearest
  EXPECT_LE(sched.throughput(1), boundary);
  EXPECT_TRUE(validate_schedule(problem, sched).ok);
}

TEST(Schedule, ConnectionsFollowScheduledRateNotRelaxedBeta) {
  // Regression: connection counts used to be llround(beta). With the
  // relaxed (fractional) betas of an LP-bound allocation summing to the
  // link budget, nearest-rounding pushed the per-period counts past
  // max-connect (7d) and validate_schedule rejected the reconstruction.
  // The counts must instead be the least number of connections that
  // sustains the *scheduled* rate.
  const auto plat = testing::two_symmetric_clusters();  // bw 10, maxcon 4
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  Allocation alloc(2);
  alloc.set_alpha(0, 1, 9.0);   // needs ceil(9/10)  = 1 connection
  alloc.set_beta(0, 1, 1.5);    // llround would take 2
  alloc.set_alpha(1, 0, 14.0);  // needs ceil(14/10) = 2 connections
  alloc.set_beta(1, 0, 2.5);    // llround would take 3 -> 5 > maxcon 4
  ASSERT_TRUE(validate_allocation(problem, alloc, 1e-6,
                                  /*require_integer_betas=*/false)
                  .ok);
  const auto sched = build_periodic_schedule(problem, alloc);
  ASSERT_EQ(sched.transfers.size(), 2u);
  for (const Transfer& t : sched.transfers) {
    const double pbw = plat.route_bottleneck_bw(t.from, t.to);
    const int needed = static_cast<int>(std::ceil(
        static_cast<double>(t.units) /
            (static_cast<double>(sched.period) * pbw) -
        1e-9));
    EXPECT_EQ(t.connections, std::max(1, needed));
  }
  EXPECT_TRUE(validate_schedule(problem, sched).ok)
      << "llround-derived counts would exceed the (7d) budget here";
}

TEST(Schedule, RateBeyondFlooredBetaIsRoundedDown) {
  // A rate that genuinely needs ceil(beta) connections cannot have them
  // when the fractional betas sum to the link budget: ceil(2.5) +
  // ceil(1.5) = 5 > maxcon 4. The reconstruction must instead round the
  // connections down to floor(beta) (whose sum always fits the budget)
  // and clip the shipped units to what those connections sustain — the
  // LPR treatment of fractional betas — rather than return a schedule
  // that validate_schedule rejects.
  const auto plat = testing::two_symmetric_clusters();  // bw 10, maxcon 4
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  Allocation alloc(2);
  alloc.set_alpha(0, 1, 25.0);  // needs 3 connections, beta grants 2
  alloc.set_beta(0, 1, 2.5);
  alloc.set_alpha(1, 0, 15.0);  // needs 2 connections, beta grants 1
  alloc.set_beta(1, 0, 1.5);
  ASSERT_TRUE(validate_allocation(problem, alloc, 1e-6,
                                  /*require_integer_betas=*/false)
                  .ok);
  const auto sched = build_periodic_schedule(problem, alloc);
  EXPECT_TRUE(validate_schedule(problem, sched).ok);
  ASSERT_EQ(sched.transfers.size(), 2u);
  for (const Transfer& t : sched.transfers) {
    const double cap =
        t.connections * plat.route_bottleneck_bw(t.from, t.to) *
        static_cast<double>(sched.period);
    EXPECT_LE(static_cast<double>(t.units), cap + 1e-9);
  }
  // Connections rounded down to the granted whole ones, units clipped.
  EXPECT_EQ(sched.transfers[0].connections, 2);
  EXPECT_EQ(sched.transfers[0].units, 20);
  EXPECT_EQ(sched.transfers[1].connections, 1);
  EXPECT_EQ(sched.transfers[1].units, 10);
}

TEST(Schedule, ValidateCatchesOverloadedPeriod) {
  const auto plat = testing::two_symmetric_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  PeriodicSchedule sched;
  sched.period = 2;
  sched.compute.push_back({0, 0, 500});  // 250/unit > speed 100
  const auto report = validate_schedule(problem, sched);
  ASSERT_FALSE(report.ok);
  EXPECT_NE(report.violations[0].find("(7b)"), std::string::npos);
}

TEST(Schedule, ValidateCatchesConnectionOveruse) {
  const auto plat = testing::two_symmetric_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  PeriodicSchedule sched;
  sched.period = 1;
  sched.transfers.push_back({0, 1, 10, 9});  // maxcon is 4
  const auto report = validate_schedule(problem, sched);
  ASSERT_FALSE(report.ok);
  bool saw = false;
  for (const auto& v : report.violations) saw |= v.find("(7d)") != std::string::npos;
  EXPECT_TRUE(saw);
}

TEST(Schedule, ValidateCatchesBandwidthOveruse) {
  const auto plat = testing::two_symmetric_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  PeriodicSchedule sched;
  sched.period = 1;
  sched.transfers.push_back({0, 1, 25, 2});  // 2 conns * bw 10 < 25
  const auto report = validate_schedule(problem, sched);
  ASSERT_FALSE(report.ok);
  bool saw = false;
  for (const auto& v : report.violations) saw |= v.find("(7e)") != std::string::npos;
  EXPECT_TRUE(saw);
}

TEST(Schedule, ValidateCatchesBadEndpoints) {
  const auto plat = testing::two_symmetric_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  PeriodicSchedule sched;
  sched.period = 1;
  sched.transfers.push_back({0, 0, 5, 1});
  EXPECT_FALSE(validate_schedule(problem, sched).ok);
  PeriodicSchedule sched2;
  sched2.period = 0;
  EXPECT_FALSE(validate_schedule(problem, sched2).ok);
}

}  // namespace
}  // namespace dls::core
