#include "core/heuristics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "platform/generator.hpp"
#include "support/rng.hpp"
#include "test_platforms.hpp"

namespace dls::core {
namespace {

constexpr double kTol = 1e-5;

// ---- deterministic scenarios --------------------------------------------

TEST(Greedy, SingleClusterTakesEverything) {
  const auto plat = testing::single_cluster();
  SteadyStateProblem problem(plat, {1.0}, Objective::Sum);
  const auto result = run_greedy(problem);
  EXPECT_NEAR(result.objective, 100.0, kTol);
  EXPECT_TRUE(validate_allocation(problem, result.allocation).ok);
  EXPECT_EQ(result.lp_solves, 0);
}

TEST(Greedy, TwoSymmetricClustersReachOptimum) {
  const auto plat = testing::two_symmetric_clusters();
  for (Objective obj : {Objective::Sum, Objective::MaxMin}) {
    SteadyStateProblem problem(plat, {1.0, 1.0}, obj);
    const auto result = run_greedy(problem);
    EXPECT_TRUE(validate_allocation(problem, result.allocation).ok);
    const double expected = obj == Objective::Sum ? 200.0 : 100.0;
    EXPECT_NEAR(result.objective, expected, kTol) << to_string(obj);
  }
}

TEST(Greedy, SourceWorkersUsesBothRoutes) {
  const auto plat = testing::source_and_two_workers();
  SteadyStateProblem problem(plat, {1.0, 0.0, 0.0}, Objective::MaxMin);
  const auto result = run_greedy(problem);
  EXPECT_TRUE(validate_allocation(problem, result.allocation).ok);
  EXPECT_NEAR(result.objective, 4.0, kTol);
  EXPECT_NEAR(result.allocation.alpha(0, 1), 2.0, kTol);
  EXPECT_NEAR(result.allocation.alpha(0, 2), 2.0, kTol);
  EXPECT_NEAR(result.allocation.beta(0, 1), 1.0, kTol);
}

TEST(Lpr, AchievesIntegerOptimumWhenBetasAlreadyIntegral) {
  const auto plat = testing::source_and_two_workers();
  SteadyStateProblem problem(plat, {1.0, 0.0, 0.0}, Objective::MaxMin);
  const auto result = run_lpr(problem);
  EXPECT_EQ(result.status, lp::SolveStatus::Optimal);
  EXPECT_TRUE(validate_allocation(problem, result.allocation).ok);
  EXPECT_NEAR(result.objective, 4.0, kTol);
  EXPECT_EQ(result.lp_solves, 1);
}

TEST(Lpr, LosesFractionalBandwidth) {
  // rounding_sensitive: LP ships 6 with beta = 1.5; LPR floors to beta 1
  // and ships only 4.
  const auto plat = testing::rounding_sensitive();
  SteadyStateProblem problem(plat, {1.0, 0.0}, Objective::Sum);
  const auto bound = lp_upper_bound(problem);
  EXPECT_NEAR(bound.objective, 6.0, kTol);
  const auto result = run_lpr(problem);
  EXPECT_TRUE(validate_allocation(problem, result.allocation).ok);
  EXPECT_NEAR(result.objective, 4.0, kTol);
  EXPECT_NEAR(result.allocation.beta(0, 1), 1.0, kTol);
}

TEST(Lprg, ReclaimsRoundedCapacity) {
  // After LPR (beta = 1, alpha = 4) the greedy pass can open a second
  // connection (maxcon 3) and use the remaining gateway capacity 2.
  const auto plat = testing::rounding_sensitive();
  SteadyStateProblem problem(plat, {1.0, 0.0}, Objective::Sum);
  const auto result = run_lprg(problem);
  EXPECT_TRUE(validate_allocation(problem, result.allocation).ok);
  EXPECT_NEAR(result.objective, 6.0, kTol);  // back to the LP bound
  EXPECT_GE(result.allocation.beta(0, 1), 2.0 - kTol);
}

TEST(Lprr, FeasibleAndDeterministicGivenSeed) {
  const auto plat = testing::rounding_sensitive();
  SteadyStateProblem problem(plat, {1.0, 0.0}, Objective::Sum);
  Rng rng_a(42), rng_b(42);
  const auto a = run_lprr(problem, rng_a);
  const auto b = run_lprr(problem, rng_b);
  EXPECT_TRUE(validate_allocation(problem, a.allocation).ok);
  EXPECT_NEAR(a.objective, b.objective, kTol);
  EXPECT_GE(a.lp_solves, 2);  // at least one fixing pass + final solve
}

TEST(Lprr, RoundsUpWhenBudgetAllows) {
  // beta_tilde = 1.5 on a maxcon-3 link: over many seeds LPRR must
  // sometimes land on 2 (objective 6) and sometimes on 1 (objective 4).
  const auto plat = testing::rounding_sensitive();
  SteadyStateProblem problem(plat, {1.0, 0.0}, Objective::Sum);
  bool saw_up = false, saw_down = false;
  for (std::uint64_t seed = 0; seed < 40 && !(saw_up && saw_down); ++seed) {
    Rng rng(seed);
    const auto r = run_lprr(problem, rng);
    EXPECT_TRUE(validate_allocation(problem, r.allocation).ok);
    if (r.objective > 5.0) saw_up = true;
    if (r.objective < 5.0) saw_down = true;
  }
  EXPECT_TRUE(saw_up);
  EXPECT_TRUE(saw_down);
}

TEST(SolveExact, MatchesHandComputedOptima) {
  {
    const auto plat = testing::source_and_two_workers();
    SteadyStateProblem problem(plat, {1.0, 0.0, 0.0}, Objective::MaxMin);
    const auto exact = solve_exact(problem);
    ASSERT_EQ(exact.status, lp::SolveStatus::Optimal);
    EXPECT_NEAR(exact.objective, 4.0, kTol);
    EXPECT_TRUE(validate_allocation(problem, exact.allocation).ok);
  }
  {
    // rounding_sensitive: integer optimum ships 6 = min(gateway 6,
    // 2 connections * bw 4 = 8).
    const auto plat = testing::rounding_sensitive();
    SteadyStateProblem problem(plat, {1.0, 0.0}, Objective::Sum);
    const auto exact = solve_exact(problem);
    ASSERT_EQ(exact.status, lp::SolveStatus::Optimal);
    EXPECT_NEAR(exact.objective, 6.0, kTol);
  }
}

// ---- randomized properties ----------------------------------------------

struct Scenario {
  platform::Platform plat;
  std::vector<double> payoffs;
};

Scenario random_scenario(Rng& rng, int num_clusters, Objective /*obj*/) {
  platform::GeneratorParams params;
  params.num_clusters = num_clusters;
  params.connectivity = rng.uniform(0.3, 0.8);
  params.heterogeneity = rng.uniform(0.0, 0.8);
  params.mean_gateway_bw = rng.uniform(40.0, 200.0);
  params.mean_backbone_bw = rng.uniform(5.0, 40.0);
  params.mean_max_connections = rng.uniform(1.0, 6.0);
  Scenario s{generate_platform(params, rng), {}};
  s.payoffs.resize(num_clusters, 1.0);
  for (double& p : s.payoffs) {
    const double u = rng.uniform01();
    p = u < 0.15 ? 0.0 : (u < 0.5 ? 1.0 : rng.uniform(0.5, 3.0));
  }
  bool any = false;
  for (double p : s.payoffs) any |= p > 0;
  if (!any) s.payoffs[0] = 1.0;
  return s;
}

class HeuristicPropertyTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HeuristicPropertyTest, AllHeuristicsValidAndBelowLpBound) {
  const auto [num_clusters, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + num_clusters);
  for (Objective obj : {Objective::Sum, Objective::MaxMin}) {
    Scenario s = random_scenario(rng, num_clusters, obj);
    SteadyStateProblem problem(s.plat, s.payoffs, obj);

    const auto bound = lp_upper_bound(problem);
    ASSERT_EQ(bound.status, lp::SolveStatus::Optimal);
    // The relaxation itself satisfies everything except integrality.
    EXPECT_TRUE(validate_allocation(problem, bound.allocation, 1e-5, false).ok);

    const auto g = run_greedy(problem);
    const auto lpr = run_lpr(problem);
    const auto lprg = run_lprg(problem);
    Rng lprr_rng = rng.split();
    const auto lprr = run_lprr(problem, lprr_rng);

    for (const auto* r : {&g, &lpr, &lprg, &lprr}) {
      ASSERT_EQ(r->status, lp::SolveStatus::Optimal);
      const auto report = validate_allocation(problem, r->allocation, 1e-5);
      EXPECT_TRUE(report.ok)
          << (report.violations.empty() ? "?" : report.violations[0]);
      EXPECT_LE(r->objective, bound.objective + 1e-4 * (1 + bound.objective));
      EXPECT_GE(r->objective, -kTol);
    }
    // Greedy refinement can only help LPR.
    EXPECT_GE(lprg.objective, lpr.objective - kTol);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomPlatforms, HeuristicPropertyTest,
    ::testing::Combine(::testing::Values(3, 5, 8), ::testing::Range(0, 6)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "K" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

class ExactDominatesTest : public ::testing::TestWithParam<int> {};

TEST_P(ExactDominatesTest, HeuristicsNeverBeatTheExactOptimum) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1234);
  Scenario s = random_scenario(rng, 4, Objective::Sum);
  for (Objective obj : {Objective::Sum, Objective::MaxMin}) {
    SteadyStateProblem problem(s.plat, s.payoffs, obj);
    lp::MilpOptions opt;
    opt.max_nodes = 20000;
    const auto exact = solve_exact(problem, opt);
    if (exact.status != lp::SolveStatus::Optimal) GTEST_SKIP();
    EXPECT_TRUE(validate_allocation(problem, exact.allocation, 1e-5).ok);

    const auto bound = lp_upper_bound(problem);
    EXPECT_LE(exact.objective, bound.objective + 1e-4 * (1 + bound.objective));

    const auto g = run_greedy(problem);
    const auto lprg = run_lprg(problem);
    Rng lprr_rng = rng.split();
    const auto lprr = run_lprr(problem, lprr_rng);
    for (const auto* r : {&g, &lprg, &lprr})
      EXPECT_LE(r->objective, exact.objective + 1e-4 * (1 + exact.objective));
  }
}

INSTANTIATE_TEST_SUITE_P(SmallRandomPlatforms, ExactDominatesTest,
                         ::testing::Range(0, 8));

TEST(LprrEqualProbability, AlsoFeasible) {
  Rng rng(7);
  Scenario s = random_scenario(rng, 5, Objective::Sum);
  SteadyStateProblem problem(s.plat, s.payoffs, Objective::Sum);
  LprrOptions options;
  options.equal_probability = true;
  Rng lprr_rng(99);
  const auto result = run_lprr(problem, lprr_rng, options);
  ASSERT_EQ(result.status, lp::SolveStatus::Optimal);
  EXPECT_TRUE(validate_allocation(problem, result.allocation, 1e-5).ok);
}

TEST(Heuristics, DisconnectedPlatformStaysLocal) {
  // No links at all: every heuristic can only run locally.
  platform::Platform plat;
  const auto r0 = plat.add_router();
  const auto r1 = plat.add_router();
  plat.add_cluster(30, 10, r0);
  plat.add_cluster(70, 10, r1);
  plat.compute_shortest_path_routes();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  const auto g = run_greedy(problem);
  const auto lprg = run_lprg(problem);
  EXPECT_NEAR(g.objective, 100.0, kTol);
  EXPECT_NEAR(lprg.objective, 100.0, kTol);
  EXPECT_NEAR(g.allocation.alpha(0, 0), 30.0, kTol);
  EXPECT_NEAR(g.allocation.alpha(1, 1), 70.0, kTol);
}

TEST(Heuristics, ZeroSpeedSourceDelegatesEverything) {
  const auto plat = testing::rounding_sensitive();
  SteadyStateProblem problem(plat, {1.0, 0.0}, Objective::Sum);
  const auto g = run_greedy(problem);
  EXPECT_TRUE(validate_allocation(problem, g.allocation).ok);
  EXPECT_NEAR(g.allocation.alpha(0, 0), 0.0, kTol);
  EXPECT_GT(g.allocation.alpha(0, 1), 0.0);
}

}  // namespace
}  // namespace dls::core
