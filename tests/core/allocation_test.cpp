#include "core/allocation.hpp"

#include <gtest/gtest.h>

#include "core/problem.hpp"
#include "test_platforms.hpp"

namespace dls::core {
namespace {

TEST(Allocation, StartsEmpty) {
  Allocation a(3);
  EXPECT_EQ(a.num_clusters(), 3);
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(a.total_alpha(k), 0.0);
    EXPECT_EQ(a.load_on(k), 0.0);
    EXPECT_EQ(a.gateway_traffic(k), 0.0);
  }
  EXPECT_THROW(Allocation(0), Error);
}

TEST(Allocation, SettersAndAggregates) {
  Allocation a(3);
  a.set_alpha(0, 0, 5.0);   // local
  a.set_alpha(0, 1, 2.0);   // remote out of 0, into 1
  a.set_alpha(2, 0, 3.0);   // remote out of 2, into 0
  a.set_beta(0, 1, 1.0);
  a.set_beta(2, 0, 2.0);

  EXPECT_DOUBLE_EQ(a.total_alpha(0), 7.0);
  EXPECT_DOUBLE_EQ(a.total_alpha(2), 3.0);
  EXPECT_DOUBLE_EQ(a.load_on(0), 8.0);   // 5 local + 3 imported
  EXPECT_DOUBLE_EQ(a.load_on(1), 2.0);
  // Gateway of 0: out 2 (to 1) + in 3 (from 2); local 5 does not count.
  EXPECT_DOUBLE_EQ(a.gateway_traffic(0), 5.0);
  EXPECT_DOUBLE_EQ(a.gateway_traffic(1), 2.0);
  EXPECT_DOUBLE_EQ(a.gateway_traffic(2), 3.0);
}

TEST(Allocation, AddAccumulates) {
  Allocation a(2);
  a.add_alpha(0, 1, 1.5);
  a.add_alpha(0, 1, 2.5);
  a.add_beta(0, 1, 1.0);
  a.add_beta(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(a.alpha(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(a.beta(0, 1), 2.0);
}

TEST(Allocation, RejectsInvalidValues) {
  Allocation a(2);
  EXPECT_THROW(a.set_alpha(0, 1, -1.0), Error);
  EXPECT_THROW(a.set_beta(0, 1, -0.5), Error);
  EXPECT_THROW(a.add_alpha(0, 1, -2.0), Error);
}

TEST(Allocation, IntegralBetaCheck) {
  Allocation a(2);
  a.set_beta(0, 1, 2.0);
  EXPECT_TRUE(a.has_integral_betas());
  a.set_beta(1, 0, 1.5);
  EXPECT_FALSE(a.has_integral_betas());
  EXPECT_TRUE(a.has_integral_betas(0.6));
}

TEST(ValidateAllocation, AcceptsFeasible) {
  const auto plat = testing::two_symmetric_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  Allocation a(2);
  a.set_alpha(0, 0, 90.0);
  a.set_alpha(0, 1, 10.0);
  a.set_beta(0, 1, 1.0);
  a.set_alpha(1, 1, 80.0);
  const auto report = validate_allocation(problem, a);
  EXPECT_TRUE(report.ok) << (report.violations.empty() ? "" : report.violations[0]);
}

TEST(ValidateAllocation, CatchesSpeedViolation) {
  const auto plat = testing::two_symmetric_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  Allocation a(2);
  a.set_alpha(0, 0, 150.0);  // speed is 100
  const auto report = validate_allocation(problem, a);
  ASSERT_FALSE(report.ok);
  EXPECT_NE(report.violations[0].find("(7b)"), std::string::npos);
}

TEST(ValidateAllocation, CatchesGatewayViolation) {
  const auto plat = testing::two_symmetric_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  Allocation a(2);
  a.set_alpha(0, 1, 45.0);  // g0 = 50 but bw cap needs beta 5 > maxcon 4...
  a.set_beta(0, 1, 5.0);    // (7d): 5 > max-connect 4
  const auto report = validate_allocation(problem, a);
  ASSERT_FALSE(report.ok);
  bool saw_7d = false;
  for (const auto& v : report.violations) saw_7d |= v.find("(7d)") != std::string::npos;
  EXPECT_TRUE(saw_7d);
}

TEST(ValidateAllocation, CatchesBandwidthViolation) {
  const auto plat = testing::two_symmetric_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  Allocation a(2);
  a.set_alpha(0, 1, 25.0);
  a.set_beta(0, 1, 2.0);  // 2 connections * bw 10 = 20 < 25
  const auto report = validate_allocation(problem, a);
  ASSERT_FALSE(report.ok);
  bool saw_7e = false;
  for (const auto& v : report.violations) saw_7e |= v.find("(7e)") != std::string::npos;
  EXPECT_TRUE(saw_7e);
}

TEST(ValidateAllocation, CatchesFractionalBeta) {
  const auto plat = testing::two_symmetric_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  Allocation a(2);
  a.set_alpha(0, 1, 15.0);
  a.set_beta(0, 1, 1.5);
  EXPECT_FALSE(validate_allocation(problem, a).ok);
  // The rational relaxation mode tolerates it.
  EXPECT_TRUE(validate_allocation(problem, a, 1e-6, false).ok);
}

TEST(ValidateAllocation, CatchesPayoffZeroSender) {
  const auto plat = testing::two_symmetric_clusters();
  SteadyStateProblem problem(plat, {1.0, 0.0}, Objective::Sum);
  Allocation a(2);
  a.set_alpha(1, 0, 5.0);  // cluster 1 has no application
  a.set_beta(1, 0, 1.0);
  const auto report = validate_allocation(problem, a);
  ASSERT_FALSE(report.ok);
  EXPECT_NE(report.violations[0].find("payoff-0"), std::string::npos);
}

TEST(ValidateAllocation, CatchesMissingRouteUse) {
  // Two clusters with no link between them.
  platform::Platform plat;
  const auto r0 = plat.add_router();
  const auto r1 = plat.add_router();
  plat.add_cluster(10, 5, r0);
  plat.add_cluster(10, 5, r1);
  plat.compute_shortest_path_routes();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  Allocation a(2);
  a.set_alpha(0, 1, 1.0);
  const auto report = validate_allocation(problem, a);
  ASSERT_FALSE(report.ok);
  EXPECT_NE(report.violations[0].find("missing route"), std::string::npos);
}

}  // namespace
}  // namespace dls::core
