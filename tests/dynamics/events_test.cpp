#include "dynamics/events.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "platform/generator.hpp"

namespace dls::dynamics {
namespace {

platform::Platform grid_platform(int k, std::uint64_t seed) {
  platform::GeneratorParams params;
  params.num_clusters = k;
  params.ensure_connected = true;
  Rng rng(seed);
  return generate_platform(params, rng);
}

TEST(Events, KindNamesRoundTrip) {
  for (EventKind kind :
       {EventKind::LinkBandwidth, EventKind::LinkMaxConnect, EventKind::LinkDown,
        EventKind::LinkUp, EventKind::GatewayBandwidth, EventKind::ClusterLeave,
        EventKind::ClusterJoin, EventKind::RouterDown, EventKind::RouterUp}) {
    EXPECT_STRNE(to_string(kind), "?");
  }
  EXPECT_TRUE(has_value(EventKind::LinkBandwidth));
  EXPECT_TRUE(has_value(EventKind::LinkMaxConnect));
  EXPECT_TRUE(has_value(EventKind::GatewayBandwidth));
  EXPECT_FALSE(has_value(EventKind::LinkDown));
  EXPECT_FALSE(has_value(EventKind::ClusterLeave));
}

TEST(Events, TextRoundTripIsBitExact) {
  EventTrace trace;
  trace.events.push_back({0.0, EventKind::LinkDown, 3, 0.0});
  trace.events.push_back(
      {1.0 / 3.0, EventKind::LinkBandwidth, 1, 123.45678901234567});
  trace.events.push_back({2.5, EventKind::LinkMaxConnect, 0, 17.0});
  trace.events.push_back({2.5, EventKind::GatewayBandwidth, 2, 1e-7});
  trace.events.push_back({7.125, EventKind::ClusterLeave, 5, 0.0});
  trace.events.push_back({900.0001, EventKind::RouterUp, 4, 0.0});

  const EventTrace back = from_text(to_text(trace));
  ASSERT_EQ(back.size(), trace.size());
  for (int i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(back.events[i].time, trace.events[i].time) << "event " << i;
    EXPECT_EQ(back.events[i].kind, trace.events[i].kind) << "event " << i;
    EXPECT_EQ(back.events[i].target, trace.events[i].target) << "event " << i;
    EXPECT_EQ(back.events[i].value, trace.events[i].value) << "event " << i;
  }
  // A second round trip reproduces the text itself bit for bit.
  EXPECT_EQ(to_text(back), to_text(trace));
}

TEST(Events, ParserDiagnosticsNameLineAndDefect) {
  const auto fails_with = [](const std::string& text, const std::string& what) {
    try {
      (void)from_text(text);
      ADD_FAILURE() << "expected failure for: " << text;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
          << "got: " << e.what();
    }
  };
  fails_with("nonsense 1\n", "bad header");
  fails_with("dls-events 2\n", "bad header");
  fails_with("dls-events 1\nfrob 1 link-down 0\n", "unknown keyword");
  fails_with("dls-events 1\nevent 1 warp-core 0\n", "unknown event kind");
  fails_with("dls-events 1\nevent 1 link-down\n", "truncated or malformed");
  fails_with("dls-events 1\nevent 1 link-bw 0\n", "truncated or malformed");
  fails_with("dls-events 1\nevent -1 link-down 0\n", "non-negative");
  fails_with("dls-events 1\nevent 5 link-down 0\nevent 2 link-up 0\n",
             "out-of-order");
  fails_with("dls-events 1\nevent 1 link-down 0 extra\n", "trailing token");
  fails_with("dls-events 1\nevent 1 link-down 0.5\n", "integer id");
  // Line numbers are reported (the defect is on line 3).
  try {
    (void)from_text("dls-events 1\nevent 1 link-down 0\nevent 1 link-down\n");
    ADD_FAILURE() << "expected failure";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << "got: " << e.what();
  }
  EXPECT_NO_THROW(from_text("dls-events 1\n"));
  EXPECT_NO_THROW(from_text("dls-events 1\n\nevent 1 link-down 0\n"));
}

TEST(Events, ValidateChecksTargetsAndValues) {
  const platform::Platform plat = grid_platform(4, 11);
  EventTrace trace;
  trace.events.push_back({1.0, EventKind::LinkDown, plat.num_links(), 0.0});
  EXPECT_THROW(trace.validate(plat), Error);  // link out of range
  trace.events[0] = {1.0, EventKind::ClusterLeave, 4, 0.0};
  EXPECT_THROW(trace.validate(plat), Error);  // cluster out of range
  trace.events[0] = {1.0, EventKind::LinkBandwidth, 0, -2.0};
  EXPECT_THROW(trace.validate(plat), Error);  // non-positive bandwidth
  trace.events[0] = {1.0, EventKind::LinkMaxConnect, 0, 2.5};
  EXPECT_THROW(trace.validate(plat), Error);  // fractional max-connect
  trace.events[0] = {1.0, EventKind::LinkBandwidth, 0, 25.0};
  EXPECT_NO_THROW(trace.validate(plat));
  trace.events.push_back({0.5, EventKind::LinkDown, 0, 0.0});
  EXPECT_THROW(trace.validate(plat), Error);  // out of order
}

TEST(Events, GeneratorsAreDeterministicSortedAndValid) {
  const platform::Platform plat = grid_platform(6, 23);
  const auto check = [&](const EventTrace& trace) {
    EXPECT_NO_THROW(trace.validate(plat));
    for (int i = 1; i < trace.size(); ++i)
      EXPECT_LE(trace.events[i - 1].time, trace.events[i].time);
  };

  FailureRepairParams fp;
  fp.horizon = 500.0;
  fp.link_mtbf = 120.0;
  fp.mean_repair = 40.0;
  Rng r1(7), r2(7);
  const EventTrace f1 = failure_repair_trace(plat, fp, r1);
  const EventTrace f2 = failure_repair_trace(plat, fp, r2);
  check(f1);
  EXPECT_GT(f1.size(), 0);
  EXPECT_EQ(to_text(f1), to_text(f2));  // same seed, same trace

  DriftParams dp;
  dp.horizon = 300.0;
  dp.step = 25.0;
  Rng r3(9);
  const EventTrace d = drift_trace(plat, dp, r3);
  check(d);
  // One event per link per step, all bandwidths clamped positive.
  EXPECT_EQ(d.size(), plat.num_links() * 11);
  for (const PlatformEvent& e : d.events) {
    EXPECT_EQ(e.kind, EventKind::LinkBandwidth);
    EXPECT_GT(e.value, 0.0);
    EXPECT_GE(e.value, plat.link(e.target).bw * dp.floor_factor);
    EXPECT_LE(e.value, plat.link(e.target).bw / dp.floor_factor);
  }

  ChurnParams cp;
  cp.horizon = 2000.0;
  cp.mean_up = 300.0;
  cp.mean_down = 100.0;
  cp.churn_fraction = 1.0;
  Rng r4(13);
  const EventTrace c = churn_trace(plat, cp, r4);
  check(c);
  EXPECT_GT(c.size(), 0);
  // Per cluster, leaves and joins alternate starting with a leave.
  for (int k = 0; k < plat.num_clusters(); ++k) {
    bool present = true;
    for (const PlatformEvent& e : c.events) {
      if (e.target != k) continue;
      if (e.kind == EventKind::ClusterLeave) {
        EXPECT_TRUE(present);
        present = false;
      } else if (e.kind == EventKind::ClusterJoin) {
        EXPECT_FALSE(present);
        present = true;
      }
    }
  }
}

TEST(Events, MergeKeepsOrderAndAllEvents) {
  EventTrace a, b;
  a.events.push_back({1.0, EventKind::LinkDown, 0, 0.0});
  a.events.push_back({5.0, EventKind::LinkUp, 0, 0.0});
  b.events.push_back({0.5, EventKind::ClusterLeave, 1, 0.0});
  b.events.push_back({5.0, EventKind::ClusterJoin, 1, 0.0});
  const EventTrace m = EventTrace::merge(a, b);
  ASSERT_EQ(m.size(), 4);
  EXPECT_EQ(m.events[0].kind, EventKind::ClusterLeave);
  EXPECT_EQ(m.events[1].kind, EventKind::LinkDown);
  // Tie at t=5: the first trace's event comes first (stable merge).
  EXPECT_EQ(m.events[2].kind, EventKind::LinkUp);
  EXPECT_EQ(m.events[3].kind, EventKind::ClusterJoin);
}

TEST(Events, ScenarioGridProducesValidTraces) {
  const platform::Platform plat = grid_platform(5, 31);
  const ChurnScenarioGrid grid;
  for (const double rate : grid.event_rate) {
    for (const double severity : grid.severity) {
      Rng rng(1000 + static_cast<std::uint64_t>(rate * 1e4) +
              static_cast<std::uint64_t>(severity * 10));
      const EventTrace trace = scenario_trace(rate, severity, 400.0, plat, rng);
      EXPECT_NO_THROW(trace.validate(plat))
          << "rate " << rate << " severity " << severity;
    }
  }
  // Higher event rates produce materially denser traces.
  Rng ra(77), rb(77);
  const EventTrace sparse =
      scenario_trace(grid.event_rate.front(), 0.5, 1000.0, plat, ra);
  const EventTrace dense =
      scenario_trace(grid.event_rate.back(), 0.5, 1000.0, plat, rb);
  EXPECT_GT(dense.size(), sparse.size());
}

}  // namespace
}  // namespace dls::dynamics
