// Churn-aware online replays: the merged arrival/drain/platform-event
// loop (online::OnlineEngine::run(workload, trace)).
#include <gtest/gtest.h>

#include <sstream>

#include "online/engine.hpp"
#include "platform/generator.hpp"

namespace dls::online {
namespace {

platform::Platform grid_platform(int k, std::uint64_t seed) {
  platform::GeneratorParams params;
  params.num_clusters = k;
  params.ensure_connected = true;
  Rng rng(seed);
  return generate_platform(params, rng);
}

Workload poisson(int count, int k, std::uint64_t seed, double rate = 1.0) {
  PoissonParams p;
  p.count = count;
  p.rate = rate;
  Rng rng(seed);
  return poisson_workload(p, k, rng);
}

/// Metrics fingerprint for bit-exactness checks.
std::string fingerprint(const OnlineReport& r) {
  std::ostringstream os;
  os.precision(17);
  os << r.completed << '|' << r.aborted << '|' << r.rejected << '|'
     << r.reschedules << '|' << r.makespan << '|' << r.total_work << '|'
     << r.metrics.response.mean() << '|' << r.metrics.utilization.mean() << '|'
     << r.metrics.fairness.mean();
  for (const AppRecord& a : r.apps)
    os << '|' << a.admit << ',' << a.depart << ',' << static_cast<int>(a.outcome);
  return os.str();
}

TEST(OnlineDynamics, EmptyTraceReproducesStaticReplayBitExact) {
  const platform::Platform plat = grid_platform(6, 5);
  const Workload wl = poisson(120, 6, 17);
  for (const Method method : {Method::Greedy, Method::Lpr}) {
    OnlineOptions options;
    options.sched.method = method;
    options.sched.objective = core::Objective::MaxMin;
    const OnlineEngine engine(plat, options);
    const OnlineReport a = engine.run(wl);
    const OnlineReport b = engine.run(wl, dynamics::EventTrace{});
    EXPECT_EQ(fingerprint(a), fingerprint(b));
    EXPECT_EQ(a.platform_events, 0);
    EXPECT_EQ(b.aborted, 0);
    EXPECT_EQ(b.rejected, 0);
  }
}

TEST(OnlineDynamics, DynamicReplayIsDeterministic) {
  const platform::Platform plat = grid_platform(6, 5);
  const Workload wl = poisson(150, 6, 17, 2.0);
  Rng trng(23);
  const dynamics::EventTrace trace =
      dynamics::scenario_trace(0.3, 0.6, 200.0, plat, trng);
  OnlineOptions options;
  options.sched.method = Method::Lpr;
  options.sched.objective = core::Objective::Sum;
  const OnlineEngine engine(plat, options);
  const OnlineReport a = engine.run(wl, trace);
  const OnlineReport b = engine.run(wl, trace);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  EXPECT_GT(a.platform_events, 0);
}

TEST(OnlineDynamics, ClusterChurnAbortsActiveAndRejectsArrivals) {
  const platform::Platform plat = grid_platform(3, 7);
  Workload wl;
  wl.arrivals.push_back({0.0, 0, 1.0, 1000.0, "victim"});    // aborted at t=5
  wl.arrivals.push_back({0.0, 1, 1.0, 1000.0, "queued1"});   // runs on C1
  wl.arrivals.push_back({1.0, 0, 1.0, 500.0, "queued0"});    // queued, aborted
  wl.arrivals.push_back({10.0, 0, 1.0, 500.0, "rejected"});  // C0 absent
  wl.arrivals.push_back({30.0, 0, 1.0, 50.0, "late"});       // C0 back

  dynamics::EventTrace trace;
  trace.events.push_back({5.0, dynamics::EventKind::ClusterLeave, 0, 0.0});
  trace.events.push_back({20.0, dynamics::EventKind::ClusterJoin, 0, 0.0});

  OnlineOptions options;
  options.sched.method = Method::Greedy;
  options.sched.objective = core::Objective::MaxMin;
  const OnlineEngine engine(plat, options);
  const OnlineReport r = engine.run(wl, trace);

  EXPECT_EQ(r.aborted, 2);
  EXPECT_EQ(r.rejected, 1);
  EXPECT_EQ(r.completed, 2);
  EXPECT_EQ(r.apps[0].outcome, AppOutcome::AbortedChurn);
  EXPECT_EQ(r.apps[0].depart, 5.0);
  EXPECT_EQ(r.apps[1].outcome, AppOutcome::Completed);
  EXPECT_EQ(r.apps[2].outcome, AppOutcome::AbortedChurn);
  EXPECT_EQ(r.apps[3].outcome, AppOutcome::RejectedChurn);
  EXPECT_EQ(r.apps[4].outcome, AppOutcome::Completed);
  EXPECT_GE(r.apps[4].admit, 30.0);  // admitted after the rejoin
  // Only completions feed the response metrics.
  EXPECT_EQ(r.metrics.response.count(), 2);
}

TEST(OnlineDynamics, CapacityEventsWarmRepairInsteadOfColdSolving) {
  const platform::Platform plat = grid_platform(8, 11);
  const Workload wl = poisson(150, 8, 29, 2.0);
  // Pure bandwidth drift: every platform event re-prices coefficients,
  // so each event-triggered re-solve must take the basis-repair path.
  dynamics::DriftParams dp;
  dp.horizon = 120.0;
  dp.step = 10.0;
  dp.sigma = 0.3;
  Rng trng(31);
  const dynamics::EventTrace trace = dynamics::drift_trace(plat, dp, trng);

  OnlineOptions options;
  options.sched.method = Method::Lpr;
  options.sched.objective = core::Objective::Sum;
  const OnlineEngine engine(plat, options);
  const OnlineReport r = engine.run(wl, trace);
  EXPECT_GT(r.platform_events, 0);
  EXPECT_GT(r.repaired_solves, 0);
  EXPECT_EQ(r.completed, r.arrivals);
  // Repairs are cheaper than cold solves often enough that the replay
  // stays overwhelmingly warm.
  EXPECT_GT(r.warm_solves, r.cold_solves);
}

TEST(OnlineDynamics, LinkFailuresForceColdSolvesButReplayCompletes) {
  const platform::Platform plat = grid_platform(8, 11);
  const Workload wl = poisson(120, 8, 29, 2.0);
  dynamics::FailureRepairParams fp;
  fp.horizon = 200.0;
  fp.link_mtbf = 100.0;
  fp.mean_repair = 20.0;
  Rng trng(37);
  const dynamics::EventTrace trace = failure_repair_trace(plat, fp, trng);
  ASSERT_GT(trace.size(), 0);

  OnlineOptions options;
  options.sched.method = Method::Lpr;
  options.sched.objective = core::Objective::Sum;
  const OnlineEngine engine(plat, options);
  const OnlineReport r = engine.run(wl, trace);
  EXPECT_EQ(r.completed + r.aborted + r.rejected, r.arrivals);
  EXPECT_GT(r.platform_events, 0);
  EXPECT_GT(r.cold_solves, 1);  // topology events drop warm state
}

TEST(OnlineDynamics, DegradedPlatformDegradesResponseTimes) {
  const platform::Platform plat = grid_platform(6, 13);
  const Workload wl = poisson(200, 6, 41, 2.0);
  // Crush every gateway to a trickle halfway through the replay.
  dynamics::EventTrace trace;
  for (int k = 0; k < 6; ++k)
    trace.events.push_back(
        {20.0, dynamics::EventKind::GatewayBandwidth, k,
         plat.cluster(k).gateway_bw * 0.02});

  OnlineOptions options;
  options.sched.method = Method::Greedy;
  options.sched.objective = core::Objective::MaxMin;
  const OnlineEngine engine(plat, options);
  const OnlineReport base = engine.run(wl);
  const OnlineReport degraded = engine.run(wl, trace);
  EXPECT_EQ(degraded.completed, degraded.arrivals);
  // Network help disappears, so responses cannot improve.
  EXPECT_GE(degraded.metrics.response.mean(),
            0.99 * base.metrics.response.mean());
}

TEST(OnlineDynamics, SingleClusterAndDisconnectedPlatformsReplayLocally) {
  // Single cluster: every method must run the whole stream locally.
  platform::Platform solo;
  solo.add_cluster(100, 50, solo.add_router("r0"), "C0");
  solo.compute_shortest_path_routes();
  const Workload wl = poisson(40, 1, 3);
  for (const Method method : {Method::Greedy, Method::Lpr, Method::LpBound}) {
    for (const core::Objective obj :
         {core::Objective::Sum, core::Objective::MaxMin}) {
      OnlineOptions options;
      options.sched.method = method;
      options.sched.objective = obj;
      const OnlineReport r = OnlineEngine(solo, options).run(wl);
      EXPECT_EQ(r.completed, r.arrivals) << to_string(method);
    }
  }

  // Fully disconnected four clusters: all work is local-only too.
  platform::Platform island;
  for (int i = 0; i < 4; ++i)
    island.add_cluster(100, 50, island.add_router(), "C" + std::to_string(i));
  island.compute_shortest_path_routes();
  const Workload wl4 = poisson(60, 4, 9);
  OnlineOptions options;
  options.sched.method = Method::Lprg;
  options.sched.objective = core::Objective::Sum;
  const OnlineReport r = OnlineEngine(island, options).run(wl4);
  EXPECT_EQ(r.completed, r.arrivals);
}

}  // namespace
}  // namespace dls::online
