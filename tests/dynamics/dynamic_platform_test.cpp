#include "dynamics/dynamic_platform.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "platform/generator.hpp"

namespace dls::dynamics {
namespace {

/// Triangle with a spur: clusters on r0..r2 plus a leaf cluster on r3.
/// Link ids: 0 = (r0,r1), 1 = (r1,r2), 2 = (r0,r2), 3 = (r2,r3).
platform::Platform diamond() {
  platform::Platform p;
  const auto r0 = p.add_router("r0");
  const auto r1 = p.add_router("r1");
  const auto r2 = p.add_router("r2");
  const auto r3 = p.add_router("r3");
  p.add_cluster(100, 50, r0, "C0");
  p.add_cluster(100, 50, r1, "C1");
  p.add_cluster(100, 50, r2, "C2");
  p.add_cluster(100, 50, r3, "C3");
  p.add_backbone(r0, r1, 10, 4);
  p.add_backbone(r1, r2, 20, 4);
  p.add_backbone(r0, r2, 30, 4);
  p.add_backbone(r2, r3, 40, 4);
  p.compute_shortest_path_routes();
  return p;
}

TEST(DynamicPlatform, BandwidthEventRefreshesCachesAndScopes) {
  DynamicPlatform dyn(diamond());
  ASSERT_EQ(dyn.plat().route_bottleneck_bw(0, 1), 10.0);
  // Route 0->3 is r0-r2-r3: bottleneck min(30, 40) = 30.
  ASSERT_EQ(dyn.plat().route_bottleneck_bw(0, 3), 30.0);

  EXPECT_EQ(dyn.apply({1.0, EventKind::LinkBandwidth, 2, 15.0}),
            ChangeScope::Capacity);
  EXPECT_EQ(dyn.plat().route_bottleneck_bw(0, 3), 15.0);
  EXPECT_EQ(dyn.plat().route_bottleneck_bw(0, 2), 15.0);
  EXPECT_EQ(dyn.plat().route_bottleneck_bw(0, 1), 10.0);  // untouched

  // Re-stating the current value is a no-op.
  EXPECT_EQ(dyn.apply({2.0, EventKind::LinkBandwidth, 2, 15.0}),
            ChangeScope::None);

  // Max-connect moves no cached metric but is still a capacity change.
  EXPECT_EQ(dyn.apply({3.0, EventKind::LinkMaxConnect, 0, 9.0}),
            ChangeScope::Capacity);
  EXPECT_EQ(dyn.plat().link(0).max_connections, 9);
}

TEST(DynamicPlatform, LinkDownReroutesOrphansAndUpRestores) {
  DynamicPlatform dyn(diamond());
  // Down (r0,r2): pairs 0<->2 and 0<->3 detour through r1.
  EXPECT_EQ(dyn.apply({1.0, EventKind::LinkDown, 2, 0.0}),
            ChangeScope::Topology);
  EXPECT_FALSE(dyn.plat().link(2).up);
  ASSERT_TRUE(dyn.plat().has_route(0, 2));
  EXPECT_EQ(dyn.plat().route(0, 2).size(), 2u);  // r0-r1-r2
  EXPECT_EQ(dyn.plat().route_bottleneck_bw(0, 2), 10.0);
  EXPECT_EQ(dyn.plat().route(0, 3).size(), 3u);  // r0-r1-r2-r3
  EXPECT_NO_THROW(dyn.plat().validate());

  // Down (r0,r1) as well: r0 is cut off entirely.
  EXPECT_EQ(dyn.apply({2.0, EventKind::LinkDown, 0, 0.0}),
            ChangeScope::Topology);
  EXPECT_FALSE(dyn.plat().has_route(0, 1));
  EXPECT_FALSE(dyn.plat().has_route(0, 2));
  EXPECT_FALSE(dyn.plat().has_route(3, 0));
  EXPECT_TRUE(dyn.plat().has_route(1, 2));  // unaffected pairs keep routes

  // Repair (r0,r2): the orphaned pairs come back over the repaired link.
  EXPECT_EQ(dyn.apply({3.0, EventKind::LinkUp, 2, 0.0}),
            ChangeScope::Topology);
  ASSERT_TRUE(dyn.plat().has_route(0, 1));
  EXPECT_EQ(dyn.plat().route_bottleneck_bw(0, 2), 30.0);
  // Sticky routing: pairs that kept a route during the outage keep
  // their detour (only route-less pairs are re-offered routes).
  EXPECT_NO_THROW(dyn.plat().validate());

  // Duplicate events are no-ops.
  EXPECT_EQ(dyn.apply({4.0, EventKind::LinkUp, 2, 0.0}), ChangeScope::None);
  EXPECT_EQ(dyn.apply({4.0, EventKind::LinkDown, 0, 0.0}), ChangeScope::None);
}

TEST(DynamicPlatform, ClusterChurnIsolatesAndRestores) {
  DynamicPlatform dyn(diamond());
  EXPECT_TRUE(dyn.cluster_present(2));

  EXPECT_EQ(dyn.apply({1.0, EventKind::ClusterLeave, 2, 0.0}),
            ChangeScope::Topology);
  EXPECT_FALSE(dyn.cluster_present(2));
  EXPECT_EQ(dyn.plat().cluster(2).speed, 0.0);
  for (int l = 0; l < 4; ++l) {
    if (l == 2) continue;
    EXPECT_FALSE(dyn.plat().has_route(2, l)) << l;
    EXPECT_FALSE(dyn.plat().has_route(l, 2)) << l;
  }
  // Other pairs are untouched (C3 still reaches C0 through r2's router:
  // a cluster leaving does not take its router down).
  EXPECT_TRUE(dyn.plat().has_route(3, 0));

  // A link repair while C2 is absent must not reconnect it.
  (void)dyn.apply({2.0, EventKind::LinkDown, 1, 0.0});
  (void)dyn.apply({3.0, EventKind::LinkUp, 1, 0.0});
  EXPECT_FALSE(dyn.plat().has_route(2, 0));
  EXPECT_FALSE(dyn.plat().has_route(0, 2));

  // Duplicate leave is a no-op; join restores speed and routes.
  EXPECT_EQ(dyn.apply({4.0, EventKind::ClusterLeave, 2, 0.0}),
            ChangeScope::None);
  EXPECT_EQ(dyn.apply({5.0, EventKind::ClusterJoin, 2, 0.0}),
            ChangeScope::Topology);
  EXPECT_TRUE(dyn.cluster_present(2));
  EXPECT_EQ(dyn.plat().cluster(2).speed, 100.0);
  EXPECT_TRUE(dyn.plat().has_route(2, 0));
  EXPECT_TRUE(dyn.plat().has_route(0, 2));
  EXPECT_NO_THROW(dyn.plat().validate());
}

TEST(DynamicPlatform, GatewayDegradationIsCapacityScoped) {
  DynamicPlatform dyn(diamond());
  EXPECT_EQ(dyn.apply({1.0, EventKind::GatewayBandwidth, 1, 12.5}),
            ChangeScope::Capacity);
  EXPECT_EQ(dyn.plat().cluster(1).gateway_bw, 12.5);
  EXPECT_EQ(dyn.apply({2.0, EventKind::GatewayBandwidth, 1, 12.5}),
            ChangeScope::None);
}

TEST(DynamicPlatform, TransitRouterFailureDropsIncidentLinks) {
  // Put a transit router in the middle: C0 - transit - C1.
  platform::Platform p;
  const auto r0 = p.add_router("r0");
  const auto rt = p.add_router("transit0");
  const auto r1 = p.add_router("r1");
  p.add_cluster(100, 50, r0, "C0");
  p.add_cluster(100, 50, r1, "C1");
  p.add_backbone(r0, rt, 10, 4);
  p.add_backbone(rt, r1, 10, 4);
  p.compute_shortest_path_routes();
  ASSERT_TRUE(p.has_route(0, 1));

  DynamicPlatform dyn(std::move(p));
  EXPECT_EQ(dyn.apply({1.0, EventKind::RouterDown, rt, 0.0}),
            ChangeScope::Topology);
  EXPECT_FALSE(dyn.plat().link(0).up);
  EXPECT_FALSE(dyn.plat().link(1).up);
  EXPECT_FALSE(dyn.plat().has_route(0, 1));

  // Repair brings exactly the links the failure took down back.
  EXPECT_EQ(dyn.apply({2.0, EventKind::RouterUp, rt, 0.0}),
            ChangeScope::Topology);
  EXPECT_TRUE(dyn.plat().link(0).up);
  EXPECT_TRUE(dyn.plat().link(1).up);
  EXPECT_TRUE(dyn.plat().has_route(0, 1));
  // Repairing an un-failed router is a no-op.
  EXPECT_EQ(dyn.apply({3.0, EventKind::RouterUp, rt, 0.0}), ChangeScope::None);
}

TEST(DynamicPlatform, LinkRepairDuringRouterOutageStaysPending) {
  // Failure processes are independent: a link's repair can fire while an
  // endpoint router is still down. The link must stay effectively down
  // (no route through a failed router) until the router recovers, at
  // which point the pending repair completes.
  platform::Platform p;
  const auto r0 = p.add_router("r0");
  const auto rt = p.add_router("transit0");
  const auto r1 = p.add_router("r1");
  p.add_cluster(100, 50, r0, "C0");
  p.add_cluster(100, 50, r1, "C1");
  const auto l0 = p.add_backbone(r0, rt, 10, 4);
  const auto l1 = p.add_backbone(rt, r1, 10, 4);
  p.compute_shortest_path_routes();
  DynamicPlatform dyn(std::move(p));

  (void)dyn.apply({1.0, EventKind::LinkDown, l0, 0.0});
  (void)dyn.apply({2.0, EventKind::RouterDown, rt, 0.0});
  // The link's own repair fires mid-outage: nothing may come up.
  EXPECT_EQ(dyn.apply({3.0, EventKind::LinkUp, l0, 0.0}), ChangeScope::None);
  EXPECT_FALSE(dyn.plat().link(l0).up);
  EXPECT_FALSE(dyn.plat().has_route(0, 1));
  EXPECT_NO_THROW(dyn.plat().validate());
  // Router repair completes both pending restores.
  EXPECT_EQ(dyn.apply({4.0, EventKind::RouterUp, rt, 0.0}),
            ChangeScope::Topology);
  EXPECT_TRUE(dyn.plat().link(l0).up);
  EXPECT_TRUE(dyn.plat().link(l1).up);
  EXPECT_TRUE(dyn.plat().has_route(0, 1));
}

TEST(DynamicPlatform, RouterFailureRespectsIndividualLinkState) {
  platform::Platform p;
  const auto r0 = p.add_router("r0");
  const auto rt = p.add_router("transit0");
  const auto r1 = p.add_router("r1");
  p.add_cluster(100, 50, r0, "C0");
  p.add_cluster(100, 50, r1, "C1");
  const auto l0 = p.add_backbone(r0, rt, 10, 4);
  p.add_backbone(rt, r1, 10, 4);
  p.compute_shortest_path_routes();
  DynamicPlatform dyn(std::move(p));

  // Link l0 fails on its own, then the router fails and recovers: l0
  // stays down (its own repair has not happened yet).
  (void)dyn.apply({1.0, EventKind::LinkDown, l0, 0.0});
  (void)dyn.apply({2.0, EventKind::RouterDown, rt, 0.0});
  (void)dyn.apply({3.0, EventKind::RouterUp, rt, 0.0});
  EXPECT_FALSE(dyn.plat().link(l0).up);
  EXPECT_TRUE(dyn.plat().link(1).up);
  EXPECT_FALSE(dyn.plat().has_route(0, 1));
  (void)dyn.apply({4.0, EventKind::LinkUp, l0, 0.0});
  EXPECT_TRUE(dyn.plat().has_route(0, 1));
}

TEST(DynamicPlatform, ScopeOrderingMergesTowardTopology) {
  EXPECT_EQ(merge_scope(ChangeScope::None, ChangeScope::None), ChangeScope::None);
  EXPECT_EQ(merge_scope(ChangeScope::None, ChangeScope::Capacity),
            ChangeScope::Capacity);
  EXPECT_EQ(merge_scope(ChangeScope::Topology, ChangeScope::Capacity),
            ChangeScope::Topology);
}

TEST(DynamicPlatform, ReplayedTraceMatchesFullRecomputeOracle) {
  // After an arbitrary capacity + failure trace, the incremental caches
  // must agree with a from-scratch shortest-path recompute on the same
  // mutated topology (for pairs both sides route; the incremental side
  // may additionally keep sticky detours the oracle would shorten).
  platform::GeneratorParams params;
  params.num_clusters = 12;
  params.ensure_connected = true;
  params.num_transit_routers = 3;
  Rng rng(97);
  platform::Platform plat = generate_platform(params, rng);

  FailureRepairParams fp;
  fp.horizon = 400.0;
  fp.link_mtbf = 150.0;
  fp.mean_repair = 60.0;
  Rng erng(13);
  EventTrace trace = failure_repair_trace(plat, fp, erng);
  DriftParams dp;
  dp.horizon = 400.0;
  dp.step = 50.0;
  trace = EventTrace::merge(trace, drift_trace(plat, dp, erng));

  DynamicPlatform dyn(plat);
  for (const PlatformEvent& e : trace.events) (void)dyn.apply(e);
  EXPECT_NO_THROW(dyn.plat().validate());

  // Oracle: copy the mutated link state onto the original platform and
  // recompute all routes from scratch.
  platform::Platform oracle = plat;
  for (platform::LinkId i = 0; i < plat.num_links(); ++i) {
    oracle.set_link_bandwidth(i, dyn.plat().link(i).bw);
    if (oracle.link(i).up != dyn.plat().link(i).up)
      (void)oracle.set_link_up(i, dyn.plat().link(i).up);
  }
  oracle.compute_shortest_path_routes();

  for (int a = 0; a < params.num_clusters; ++a) {
    for (int b = 0; b < params.num_clusters; ++b) {
      if (a == b) continue;
      // The oracle routes every connected pair; the incremental side
      // must route exactly the same set.
      ASSERT_EQ(dyn.plat().has_route(a, b), oracle.has_route(a, b))
          << a << "->" << b;
      if (!oracle.has_route(a, b)) continue;
      // Sticky detours may differ from the oracle's shortest path, but
      // both must be valid and both caches must price their own route
      // correctly; when the paths coincide the bottleneck must match.
      if (std::vector<platform::LinkId>(dyn.plat().route(a, b).begin(),
                                        dyn.plat().route(a, b).end()) ==
          std::vector<platform::LinkId>(oracle.route(a, b).begin(),
                                        oracle.route(a, b).end())) {
        EXPECT_EQ(dyn.plat().route_bottleneck_bw(a, b),
                  oracle.route_bottleneck_bw(a, b))
            << a << "->" << b;
      }
    }
  }
}

}  // namespace
}  // namespace dls::dynamics
