#include "platform/serialization.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "platform/generator.hpp"

namespace dls::platform {
namespace {

TEST(Serialization, RoundTripSmallPlatform) {
  Platform p;
  const RouterId r0 = p.add_router("r0");
  const RouterId r1 = p.add_router();  // unnamed
  p.add_cluster(100, 50, r0, "site-a");
  p.add_cluster(80, 60, r1);
  p.add_backbone(r0, r1, 12.5, 3, "wan");
  p.set_route(0, 1, {0});
  p.set_route(1, 0, {0});

  const std::string text = to_text(p);
  const Platform q = from_text(text);

  EXPECT_EQ(q.num_clusters(), 2);
  EXPECT_EQ(q.num_routers(), 2);
  EXPECT_EQ(q.num_links(), 1);
  EXPECT_EQ(q.cluster(0).name, "site-a");
  EXPECT_EQ(q.cluster(1).name, "");
  EXPECT_DOUBLE_EQ(q.cluster(1).gateway_bw, 60);
  EXPECT_DOUBLE_EQ(q.link(0).bw, 12.5);
  EXPECT_EQ(q.link(0).max_connections, 3);
  EXPECT_TRUE(q.has_route(0, 1));
  EXPECT_TRUE(q.has_route(1, 0));
  // Idempotent: text -> platform -> identical text.
  EXPECT_EQ(to_text(q), text);
}

TEST(Serialization, RoundTripGeneratedPlatforms) {
  Rng rng(3);
  GeneratorParams params;
  params.num_clusters = 15;
  params.connectivity = 0.4;
  for (int t = 0; t < 10; ++t) {
    const Platform p = generate_platform(params, rng);
    const Platform q = from_text(to_text(p));
    EXPECT_EQ(to_text(q), to_text(p));
    EXPECT_NO_THROW(q.validate());
  }
}

TEST(Serialization, PlatformWithoutRoutes) {
  Platform p;
  const RouterId r = p.add_router();
  p.add_cluster(10, 5, r);
  const Platform q = from_text(to_text(p));
  EXPECT_EQ(q.num_clusters(), 1);
  EXPECT_FALSE(to_text(q).empty());
}

TEST(Serialization, RejectsBadHeader) {
  EXPECT_THROW(from_text("bogus 1\n"), Error);
  EXPECT_THROW(from_text("dls-platform 99\n"), Error);
  EXPECT_THROW(from_text(""), Error);
}

TEST(Serialization, RejectsUnknownKeyword) {
  EXPECT_THROW(from_text("dls-platform 1\nrouters 0\nwat 3\n"), Error);
}

TEST(Serialization, RejectsMalformedLines) {
  EXPECT_THROW(from_text("dls-platform 1\nrouter 0\n"), Error);       // no name
  EXPECT_THROW(from_text("dls-platform 1\ncluster 1 2\n"), Error);    // short
  EXPECT_THROW(from_text("dls-platform 1\nrouter 5 r5\n"), Error);    // non-dense id
}

TEST(Serialization, RejectsWhitespaceNames) {
  Platform p;
  const RouterId r = p.add_router("has space");
  p.add_cluster(1, 1, r);
  std::ostringstream oss;
  EXPECT_THROW(write_platform(p, oss), Error);
}

}  // namespace
}  // namespace dls::platform
