#include "platform/generator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "platform/serialization.hpp"

namespace dls::platform {
namespace {

GeneratorParams default_params() {
  GeneratorParams p;
  p.num_clusters = 12;
  p.connectivity = 0.5;
  p.heterogeneity = 0.4;
  p.mean_gateway_bw = 250;
  p.mean_backbone_bw = 50;
  p.mean_max_connections = 35;
  return p;
}

TEST(Generator, ProducesValidPlatform) {
  Rng rng(1);
  const Platform p = generate_platform(default_params(), rng);
  EXPECT_EQ(p.num_clusters(), 12);
  EXPECT_EQ(p.num_routers(), 12);
  EXPECT_NO_THROW(p.validate());
}

TEST(Generator, DeterministicGivenSeed) {
  Rng a(77), b(77);
  const Platform pa = generate_platform(default_params(), a);
  const Platform pb = generate_platform(default_params(), b);
  EXPECT_EQ(to_text(pa), to_text(pb));
}

TEST(Generator, SamplesWithinHeterogeneityRange) {
  GeneratorParams params = default_params();
  params.heterogeneity = 0.3;
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const Platform p = generate_platform(params, rng);
    for (int k = 0; k < p.num_clusters(); ++k) {
      const double g = p.cluster(k).gateway_bw;
      EXPECT_GE(g, params.mean_gateway_bw * 0.7 - 1e-9);
      EXPECT_LE(g, params.mean_gateway_bw * 1.3 + 1e-9);
      EXPECT_EQ(p.cluster(k).speed, params.cluster_speed);
    }
    for (int i = 0; i < p.num_links(); ++i) {
      EXPECT_GE(p.link(i).bw, params.mean_backbone_bw * 0.7 - 1e-9);
      EXPECT_LE(p.link(i).bw, params.mean_backbone_bw * 1.3 + 1e-9);
      EXPECT_GE(p.link(i).max_connections, 1);
      EXPECT_LE(p.link(i).max_connections,
                std::lround(params.mean_max_connections * 1.3) + 1);
    }
  }
}

TEST(Generator, ZeroHeterogeneityIsUniform) {
  GeneratorParams params = default_params();
  params.heterogeneity = 0.0;
  Rng rng(9);
  const Platform p = generate_platform(params, rng);
  for (int k = 0; k < p.num_clusters(); ++k)
    EXPECT_DOUBLE_EQ(p.cluster(k).gateway_bw, params.mean_gateway_bw);
  for (int i = 0; i < p.num_links(); ++i)
    EXPECT_DOUBLE_EQ(p.link(i).bw, params.mean_backbone_bw);
}

TEST(Generator, ConnectivityControlsEdgeCount) {
  GeneratorParams sparse = default_params();
  sparse.connectivity = 0.1;
  GeneratorParams dense = default_params();
  dense.connectivity = 0.8;
  Rng rng(11);
  int sparse_links = 0, dense_links = 0;
  for (int t = 0; t < 20; ++t) {
    sparse_links += generate_platform(sparse, rng).num_links();
    dense_links += generate_platform(dense, rng).num_links();
  }
  EXPECT_LT(sparse_links * 3, dense_links);  // ~8x apart in expectation
}

TEST(Generator, EnsureConnectedGivesAllRoutes) {
  GeneratorParams params = default_params();
  params.connectivity = 0.0;  // only the spanning tree
  params.ensure_connected = true;
  Rng rng(13);
  const Platform p = generate_platform(params, rng);
  EXPECT_EQ(p.num_links(), p.num_clusters() - 1);
  for (int k = 0; k < p.num_clusters(); ++k)
    for (int l = 0; l < p.num_clusters(); ++l)
      EXPECT_TRUE(p.has_route(k, l)) << k << "->" << l;
}

TEST(Generator, DisconnectedPairsHappenAtLowConnectivity) {
  GeneratorParams params = default_params();
  params.connectivity = 0.05;
  params.num_clusters = 8;
  Rng rng(17);
  bool saw_missing_route = false;
  for (int t = 0; t < 50 && !saw_missing_route; ++t) {
    const Platform p = generate_platform(params, rng);
    for (int k = 0; k < p.num_clusters() && !saw_missing_route; ++k)
      for (int l = 0; l < p.num_clusters(); ++l)
        if (!p.has_route(k, l)) {
          saw_missing_route = true;
          break;
        }
  }
  EXPECT_TRUE(saw_missing_route);
}

TEST(Generator, TransitRoutersExtendPaths) {
  GeneratorParams params = default_params();
  params.num_transit_routers = 5;
  params.ensure_connected = true;
  Rng rng(19);
  const Platform p = generate_platform(params, rng);
  EXPECT_EQ(p.num_routers(), params.num_clusters + 5);
  EXPECT_NO_THROW(p.validate());
  // All pairs still routable after subdivisions.
  for (int k = 0; k < p.num_clusters(); ++k)
    for (int l = 0; l < p.num_clusters(); ++l) EXPECT_TRUE(p.has_route(k, l));
}

TEST(Generator, TransitRoutersPreserveRouteBottlenecks) {
  // On a tree backbone (connectivity 0, ensure_connected) every cluster
  // pair has a unique path, so subdividing links with transit routers
  // must leave each pair's bottleneck per-connection bandwidth exactly
  // as it was: both halves of a split inherit the original bw.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    GeneratorParams base = default_params();
    base.connectivity = 0.0;
    base.ensure_connected = true;
    GeneratorParams with_transit = base;
    with_transit.num_transit_routers = 6;
    // Same seed: the pre-subdivision platforms are draw-for-draw equal
    // (transit placement consumes its randomness after the links).
    Rng ra(seed), rb(seed);
    const Platform plain = generate_platform(base, ra);
    const Platform transit = generate_platform(with_transit, rb);
    ASSERT_EQ(transit.num_routers(), plain.num_routers() + 6);
    for (int k = 0; k < plain.num_clusters(); ++k) {
      for (int l = 0; l < plain.num_clusters(); ++l) {
        if (k == l) continue;
        ASSERT_TRUE(transit.has_route(k, l));
        EXPECT_DOUBLE_EQ(transit.route_bottleneck_bw(k, l),
                         plain.route_bottleneck_bw(k, l))
            << "seed " << seed << " pair " << k << "->" << l;
        // A subdivided path can only have grown in hop count.
        EXPECT_GE(transit.route(k, l).size(), plain.route(k, l).size());
      }
    }
  }
}

TEST(Generator, EnsureConnectedReachableAcrossSeeds) {
  GeneratorParams params = default_params();
  params.connectivity = 0.05;  // sparse random part; the tree must carry
  params.ensure_connected = true;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    const Platform p = generate_platform(params, rng);
    for (int k = 0; k < p.num_clusters(); ++k)
      for (int l = 0; l < p.num_clusters(); ++l)
        ASSERT_TRUE(p.has_route(k, l))
            << "seed " << seed << ": " << k << " cannot reach " << l;
  }
}

TEST(Generator, RejectsBadParameters) {
  Rng rng(1);
  GeneratorParams p = default_params();
  p.num_clusters = 0;
  EXPECT_THROW(generate_platform(p, rng), Error);
  p = default_params();
  p.connectivity = 1.5;
  EXPECT_THROW(generate_platform(p, rng), Error);
  p = default_params();
  p.heterogeneity = 1.0;
  EXPECT_THROW(generate_platform(p, rng), Error);
  p = default_params();
  p.mean_backbone_bw = 0;
  EXPECT_THROW(generate_platform(p, rng), Error);
}

TEST(Generator, LatencySamplingMatchesCapacityStream) {
  // Latency uses the same heterogeneity spread as g/bw/max-connect and
  // is drawn after them: with the same seed, a latency-free run and a
  // latency-enabled run produce identical topologies, gateways,
  // bandwidths and max-connect budgets.
  GeneratorParams params = default_params();
  params.num_clusters = 12;
  params.heterogeneity = 0.4;
  params.ensure_connected = true;
  Rng r1(77);
  const Platform bare = generate_platform(params, r1);

  params.mean_latency = 0.05;
  Rng r2(77);
  const Platform latent = generate_platform(params, r2);

  ASSERT_EQ(bare.num_links(), latent.num_links());
  for (int i = 0; i < bare.num_links(); ++i) {
    EXPECT_EQ(bare.link(i).a, latent.link(i).a);
    EXPECT_EQ(bare.link(i).b, latent.link(i).b);
    EXPECT_EQ(bare.link(i).bw, latent.link(i).bw) << "link " << i;
    EXPECT_EQ(bare.link(i).max_connections, latent.link(i).max_connections);
    EXPECT_EQ(bare.link(i).latency, 0.0);
    // Latency itself honors the heterogeneity spread.
    EXPECT_GE(latent.link(i).latency, 0.05 * 0.6 - 1e-12);
    EXPECT_LE(latent.link(i).latency, 0.05 * 1.4 + 1e-12);
  }
  for (int k = 0; k < bare.num_clusters(); ++k)
    EXPECT_EQ(bare.cluster(k).gateway_bw, latent.cluster(k).gateway_bw);
}

TEST(Generator, SingleClusterPlatform) {
  GeneratorParams params = default_params();
  params.num_clusters = 1;
  Rng rng(23);
  const Platform p = generate_platform(params, rng);
  EXPECT_EQ(p.num_clusters(), 1);
  EXPECT_EQ(p.num_links(), 0);
  EXPECT_TRUE(p.has_route(0, 0));
}

TEST(Table1Grid, MatchesPaperCellCount) {
  // 10 * 8 * 4 * 4 * 9 * 10 = 115,200 cells; with ~10 samples per cell the
  // paper reports 269,835 platform configurations (some cells repeated).
  const Table1Grid grid;
  const std::size_t cells = grid.num_clusters.size() * grid.connectivity.size() *
                            grid.heterogeneity.size() * grid.mean_gateway_bw.size() *
                            grid.mean_backbone_bw.size() *
                            grid.mean_max_connections.size();
  EXPECT_EQ(cells, 115200u);
}

}  // namespace
}  // namespace dls::platform
