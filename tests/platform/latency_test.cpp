// Link latency support (platform + serialization v2 + generator).
#include <gtest/gtest.h>

#include "platform/generator.hpp"
#include "platform/platform.hpp"
#include "platform/serialization.hpp"
#include "support/rng.hpp"

namespace dls::platform {
namespace {

TEST(Latency, DefaultsToZero) {
  Platform p;
  const auto r0 = p.add_router();
  const auto r1 = p.add_router();
  p.add_cluster(1, 1, r0);
  p.add_cluster(1, 1, r1);
  p.add_backbone(r0, r1, 10, 2);
  EXPECT_EQ(p.link(0).latency, 0.0);
  p.set_route(0, 1, {0});
  EXPECT_EQ(p.route_latency(0, 1), 0.0);
}

TEST(Latency, RouteLatencySumsLinks) {
  Platform p;
  const auto r0 = p.add_router();
  const auto r1 = p.add_router();
  const auto r2 = p.add_router();
  p.add_cluster(1, 1, r0);
  p.add_cluster(1, 1, r2);
  const auto l0 = p.add_backbone(r0, r1, 10, 2, "a", 0.02);
  const auto l1 = p.add_backbone(r1, r2, 10, 2, "b", 0.05);
  p.set_route(0, 1, {l0, l1});
  EXPECT_DOUBLE_EQ(p.route_latency(0, 1), 0.07);
  EXPECT_DOUBLE_EQ(p.route_latency(0, 0), 0.0);
}

TEST(Latency, RejectsNegative) {
  Platform p;
  const auto r0 = p.add_router();
  const auto r1 = p.add_router();
  EXPECT_THROW(p.add_backbone(r0, r1, 10, 2, "", -0.1), Error);
}

TEST(Latency, SubdivisionSplitsLatency) {
  Platform p;
  const auto r0 = p.add_router();
  const auto r1 = p.add_router();
  p.add_cluster(1, 1, r0);
  p.add_cluster(1, 1, r1);
  p.add_backbone(r0, r1, 10, 2, "x", 0.08);
  const auto mid = p.add_router();
  const auto half = p.subdivide_link(0, mid);
  EXPECT_DOUBLE_EQ(p.link(0).latency + p.link(half).latency, 0.08);
  p.compute_shortest_path_routes();
  EXPECT_DOUBLE_EQ(p.route_latency(0, 1), 0.08);  // end-to-end preserved
}

TEST(Latency, SerializationV2RoundTrip) {
  Platform p;
  const auto r0 = p.add_router();
  const auto r1 = p.add_router();
  p.add_cluster(100, 50, r0);
  p.add_cluster(100, 50, r1);
  p.add_backbone(r0, r1, 12.5, 3, "wan", 0.042);
  const Platform q = from_text(to_text(p));
  EXPECT_DOUBLE_EQ(q.link(0).latency, 0.042);
  EXPECT_EQ(to_text(q), to_text(p));
}

TEST(Latency, ReadsVersion1FilesWithoutLatency) {
  const std::string v1 =
      "dls-platform 1\n"
      "routers 2\n"
      "router 0 -\n"
      "router 1 -\n"
      "cluster 100 50 0 -\n"
      "cluster 100 50 1 -\n"
      "link 0 1 12.5 3 wan\n"
      "route 0 1 1 0\n";
  const Platform p = from_text(v1);
  EXPECT_EQ(p.num_links(), 1);
  EXPECT_DOUBLE_EQ(p.link(0).bw, 12.5);
  EXPECT_EQ(p.link(0).latency, 0.0);
  EXPECT_TRUE(p.has_route(0, 1));
}

TEST(Latency, GeneratorSamplesLatencies) {
  GeneratorParams params;
  params.num_clusters = 10;
  params.connectivity = 0.6;
  params.heterogeneity = 0.4;
  params.mean_latency = 0.05;
  Rng rng(3);
  const Platform p = generate_platform(params, rng);
  ASSERT_GT(p.num_links(), 0);
  for (int i = 0; i < p.num_links(); ++i) {
    EXPECT_GE(p.link(i).latency, 0.05 * 0.6 - 1e-12);
    EXPECT_LE(p.link(i).latency, 0.05 * 1.4 + 1e-12);
  }
}

TEST(Latency, GeneratorDefaultIsLatencyFree) {
  GeneratorParams params;
  params.num_clusters = 6;
  params.connectivity = 0.8;
  Rng rng(5);
  const Platform p = generate_platform(params, rng);
  for (int i = 0; i < p.num_links(); ++i) EXPECT_EQ(p.link(i).latency, 0.0);
}

}  // namespace
}  // namespace dls::platform
