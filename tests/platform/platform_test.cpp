#include "platform/platform.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "support/rng.hpp"

namespace dls::platform {
namespace {

/// Two clusters joined by a single backbone link.
Platform two_cluster_line() {
  Platform p;
  const RouterId r0 = p.add_router("r0");
  const RouterId r1 = p.add_router("r1");
  p.add_cluster(100, 50, r0, "C0");
  p.add_cluster(100, 60, r1, "C1");
  p.add_backbone(r0, r1, 10, 4, "bb");
  return p;
}

TEST(Platform, BuildsAndValidates) {
  Platform p = two_cluster_line();
  EXPECT_EQ(p.num_clusters(), 2);
  EXPECT_EQ(p.num_routers(), 2);
  EXPECT_EQ(p.num_links(), 1);
  EXPECT_EQ(p.cluster(0).speed, 100);
  EXPECT_EQ(p.cluster(1).gateway_bw, 60);
  EXPECT_EQ(p.link(0).max_connections, 4);
  EXPECT_NO_THROW(p.validate());
}

TEST(Platform, RejectsInvalidInputs) {
  Platform p;
  EXPECT_THROW(p.add_cluster(100, 50, 0), Error);  // no routers yet
  const RouterId r = p.add_router();
  EXPECT_THROW(p.add_cluster(-1, 50, r), Error);
  EXPECT_THROW(p.add_cluster(100, 0, r), Error);
  EXPECT_THROW(p.add_backbone(r, r, 10, 1), Error);   // self-loop
  const RouterId r2 = p.add_router();
  EXPECT_THROW(p.add_backbone(r, r2, 0, 1), Error);   // zero bw
  EXPECT_THROW(p.add_backbone(r, r2, 10, -1), Error); // negative maxcon
}

TEST(Platform, LocalRouteAlwaysExists) {
  Platform p = two_cluster_line();
  EXPECT_TRUE(p.has_route(0, 0));
  EXPECT_TRUE(p.route(0, 0).empty());
}

TEST(Platform, SetRouteValidatesPath) {
  Platform p = two_cluster_line();
  EXPECT_FALSE(p.has_route(0, 1));
  p.set_route(0, 1, {0});
  EXPECT_TRUE(p.has_route(0, 1));
  ASSERT_EQ(p.route(0, 1).size(), 1u);
  EXPECT_FALSE(p.has_route(1, 0));  // directed table

  EXPECT_THROW(p.set_route(0, 0, {}), Error);   // local
  EXPECT_THROW(p.set_route(0, 1, {5}), Error);  // dangling link
}

TEST(Platform, SetRouteRejectsBrokenPath) {
  Platform p;
  const RouterId r0 = p.add_router();
  const RouterId r1 = p.add_router();
  const RouterId r2 = p.add_router();
  p.add_cluster(1, 1, r0);
  p.add_cluster(1, 1, r2);
  const LinkId l01 = p.add_backbone(r0, r1, 1, 1);
  const LinkId l12 = p.add_backbone(r1, r2, 1, 1);
  // Correct path works, wrong order does not, incomplete does not.
  EXPECT_THROW(p.set_route(0, 1, {l12, l01}), Error);
  EXPECT_THROW(p.set_route(0, 1, {l01, l12, l12}), Error);
  p.set_route(0, 1, {l01, l12});
  EXPECT_EQ(p.route(0, 1).size(), 2u);
}

TEST(Platform, ClearRoute) {
  Platform p = two_cluster_line();
  p.set_route(0, 1, {0});
  p.clear_route(0, 1);
  EXPECT_FALSE(p.has_route(0, 1));
}

TEST(Platform, BottleneckBandwidth) {
  Platform p;
  const RouterId r0 = p.add_router();
  const RouterId r1 = p.add_router();
  const RouterId r2 = p.add_router();
  p.add_cluster(1, 1, r0);
  p.add_cluster(1, 1, r2);
  const LinkId fat = p.add_backbone(r0, r1, 100, 5);
  const LinkId thin = p.add_backbone(r1, r2, 7, 5);
  p.set_route(0, 1, {fat, thin});
  EXPECT_DOUBLE_EQ(p.route_bottleneck_bw(0, 1), 7.0);
  // Local: empty route -> infinite backbone bandwidth.
  EXPECT_TRUE(std::isinf(p.route_bottleneck_bw(0, 0)));
}

TEST(Platform, SameRouterClustersHaveEmptyRoute) {
  Platform p;
  const RouterId r = p.add_router();
  p.add_cluster(1, 1, r);
  p.add_cluster(1, 1, r);
  p.compute_shortest_path_routes();
  EXPECT_TRUE(p.has_route(0, 1));
  EXPECT_TRUE(p.route(0, 1).empty());
  EXPECT_TRUE(std::isinf(p.route_bottleneck_bw(0, 1)));
}

TEST(Platform, ShortestPathRoutesLine) {
  // r0 - r1 - r2 - r3 line; clusters at both ends.
  Platform p;
  std::vector<RouterId> r;
  for (int i = 0; i < 4; ++i) r.push_back(p.add_router());
  p.add_cluster(1, 1, r[0]);
  p.add_cluster(1, 1, r[3]);
  std::vector<LinkId> l;
  for (int i = 0; i < 3; ++i) l.push_back(p.add_backbone(r[i], r[i + 1], 10, 2));
  p.compute_shortest_path_routes();
  ASSERT_TRUE(p.has_route(0, 1));
  const auto route = p.route(0, 1);
  ASSERT_EQ(route.size(), 3u);
  EXPECT_EQ(route[0], l[0]);
  EXPECT_EQ(route[1], l[1]);
  EXPECT_EQ(route[2], l[2]);
}

TEST(Platform, ShortestPathPrefersFewestHops) {
  // Triangle with a 2-hop detour: direct link must win.
  Platform p;
  const RouterId r0 = p.add_router();
  const RouterId r1 = p.add_router();
  const RouterId r2 = p.add_router();
  p.add_cluster(1, 1, r0);
  p.add_cluster(1, 1, r2);
  p.add_backbone(r0, r1, 100, 9);
  p.add_backbone(r1, r2, 100, 9);
  const LinkId direct = p.add_backbone(r0, r2, 1, 1);
  p.compute_shortest_path_routes();
  ASSERT_EQ(p.route(0, 1).size(), 1u);
  EXPECT_EQ(p.route(0, 1)[0], direct);
}

TEST(Platform, UnreachablePairsHaveNoRoute) {
  Platform p;
  const RouterId r0 = p.add_router();
  const RouterId r1 = p.add_router();
  p.add_cluster(1, 1, r0);
  p.add_cluster(1, 1, r1);
  p.compute_shortest_path_routes();  // no links at all
  EXPECT_FALSE(p.has_route(0, 1));
  EXPECT_FALSE(p.has_route(1, 0));
  EXPECT_THROW(static_cast<void>(p.route(0, 1)), Error);
}

TEST(Platform, RoutesSurviveClusterAddition) {
  Platform p = two_cluster_line();
  p.set_route(0, 1, {0});
  const RouterId r2 = p.add_router();
  p.add_backbone(1, r2, 5, 1);
  p.add_cluster(100, 10, r2, "C2");
  EXPECT_TRUE(p.has_route(0, 1));  // old route preserved across migration
  EXPECT_EQ(p.route(0, 1).size(), 1u);
  EXPECT_FALSE(p.has_route(0, 2));
  EXPECT_NO_THROW(p.validate());
}

TEST(Platform, SubdivideLinkPreservesBottleneck) {
  Platform p = two_cluster_line();
  const RouterId mid = p.add_router("mid");
  const LinkId second = p.subdivide_link(0, mid);
  EXPECT_EQ(p.num_links(), 2);
  EXPECT_EQ(p.link(0).b, mid);
  EXPECT_EQ(p.link(second).a, mid);
  EXPECT_EQ(p.link(second).bw, p.link(0).bw);
  p.compute_shortest_path_routes();
  ASSERT_TRUE(p.has_route(0, 1));
  EXPECT_EQ(p.route(0, 1).size(), 2u);
  EXPECT_DOUBLE_EQ(p.route_bottleneck_bw(0, 1), 10.0);
}

TEST(Platform, ValidateCatchesCorruptRoute) {
  Platform p = two_cluster_line();
  p.set_route(0, 1, {0});
  EXPECT_NO_THROW(p.validate());
}

TEST(Platform, RouteIsDirectional) {
  Platform p = two_cluster_line();
  p.compute_shortest_path_routes();
  EXPECT_TRUE(p.has_route(0, 1));
  EXPECT_TRUE(p.has_route(1, 0));
  // Same single link both ways for this topology.
  EXPECT_EQ(p.route(0, 1)[0], p.route(1, 0)[0]);
}

/// Route metric queries are served from a per-pair cache; every mutator
/// must keep it consistent with the installed routes.
TEST(Platform, RouteMetricCacheFollowsRouteEdits) {
  Platform p;
  const RouterId r0 = p.add_router();
  const RouterId r1 = p.add_router();
  const RouterId r2 = p.add_router();
  p.add_cluster(100, 50, r0, "C0");
  p.add_cluster(100, 60, r1, "C1");
  const LinkId direct = p.add_backbone(r0, r1, 10, 4, "direct", 1.0);
  const LinkId up = p.add_backbone(r0, r2, 3, 4, "up", 2.0);
  const LinkId down = p.add_backbone(r2, r1, 8, 4, "down", 0.5);

  p.set_route(0, 1, {direct});
  EXPECT_DOUBLE_EQ(p.route_bottleneck_bw(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(p.route_latency(0, 1), 1.0);

  // Re-routing the pair through the detour updates both cached metrics.
  p.set_route(0, 1, {up, down});
  EXPECT_DOUBLE_EQ(p.route_bottleneck_bw(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(p.route_latency(0, 1), 2.5);

  p.clear_route(0, 1);
  EXPECT_THROW(p.route_bottleneck_bw(0, 1), Error);

  // BFS reinstall repopulates the cache (shortest route is the direct link).
  p.compute_shortest_path_routes();
  EXPECT_DOUBLE_EQ(p.route_bottleneck_bw(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(p.route_latency(0, 1), 1.0);

  // Local pairs stay unconstrained by the backbone.
  EXPECT_TRUE(std::isinf(p.route_bottleneck_bw(0, 0)));
  EXPECT_DOUBLE_EQ(p.route_latency(1, 1), 0.0);
}

TEST(Platform, RouteMetricCacheSurvivesClusterGrowth) {
  Platform p = two_cluster_line();
  p.compute_shortest_path_routes();
  ASSERT_DOUBLE_EQ(p.route_bottleneck_bw(0, 1), 10.0);
  // Adding a cluster migrates the route table and its metric cache.
  const RouterId r2 = p.add_router();
  p.add_backbone(1, r2, 5, 1);
  p.add_cluster(100, 10, r2, "C2");
  EXPECT_DOUBLE_EQ(p.route_bottleneck_bw(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(p.route_latency(0, 1), 0.0);
}

TEST(Platform, RouteMetricCacheInvalidatedBySubdivide) {
  Platform p = two_cluster_line();
  p.compute_shortest_path_routes();
  ASSERT_TRUE(p.has_route(0, 1));
  const RouterId mid = p.add_router("mid");
  p.subdivide_link(0, mid);
  // Routes (and metrics) are dropped until recomputed.
  EXPECT_FALSE(p.has_route(0, 1));
  EXPECT_THROW(p.route_bottleneck_bw(0, 1), Error);
  p.compute_shortest_path_routes();
  EXPECT_DOUBLE_EQ(p.route_bottleneck_bw(0, 1), 10.0);
}

// ---- dynamics mutators (ISSUE 4) -------------------------------------------

/// Triangle: C0-C1 (bw 10), C1-C2 (bw 20), C0-C2 (bw 30).
Platform triangle() {
  Platform p;
  const RouterId r0 = p.add_router("r0");
  const RouterId r1 = p.add_router("r1");
  const RouterId r2 = p.add_router("r2");
  p.add_cluster(100, 50, r0, "C0");
  p.add_cluster(100, 50, r1, "C1");
  p.add_cluster(100, 50, r2, "C2");
  p.add_backbone(r0, r1, 10, 4);
  p.add_backbone(r1, r2, 20, 4);
  p.add_backbone(r0, r2, 30, 4);
  p.compute_shortest_path_routes();
  return p;
}

TEST(Platform, SetLinkBandwidthRefreshesOnlyRoutedPairs) {
  Platform p = triangle();
  ASSERT_DOUBLE_EQ(p.route_bottleneck_bw(0, 2), 30.0);
  ASSERT_EQ(p.num_routes_through(2), 2);  // 0->2 and 2->0
  p.set_link_bandwidth(2, 7.5);
  EXPECT_DOUBLE_EQ(p.route_bottleneck_bw(0, 2), 7.5);
  EXPECT_DOUBLE_EQ(p.route_bottleneck_bw(2, 0), 7.5);
  EXPECT_DOUBLE_EQ(p.route_bottleneck_bw(0, 1), 10.0);  // untouched pair
  EXPECT_THROW(p.set_link_bandwidth(0, 0.0), Error);
  EXPECT_THROW(p.set_link_bandwidth(99, 5.0), Error);
  EXPECT_NO_THROW(p.validate());
}

TEST(Platform, SetLinkMaxConnectionsIsMetricNeutral) {
  Platform p = triangle();
  p.set_link_max_connections(0, 11);
  EXPECT_EQ(p.link(0).max_connections, 11);
  EXPECT_DOUBLE_EQ(p.route_bottleneck_bw(0, 1), 10.0);
  EXPECT_THROW(p.set_link_max_connections(0, -1), Error);
}

TEST(Platform, SetClusterMutatorsValidate) {
  Platform p = triangle();
  p.set_cluster_speed(1, 250.0);
  EXPECT_DOUBLE_EQ(p.cluster(1).speed, 250.0);
  p.set_cluster_speed(1, 0.0);  // zero is legal (NP gadget source)
  p.set_cluster_gateway_bw(1, 12.0);
  EXPECT_DOUBLE_EQ(p.cluster(1).gateway_bw, 12.0);
  EXPECT_THROW(p.set_cluster_speed(1, -1.0), Error);
  EXPECT_THROW(p.set_cluster_gateway_bw(1, 0.0), Error);
}

TEST(Platform, LinkDownReroutesOrDropsAndUpRestores) {
  Platform p = triangle();
  // Down C0-C2: both directions detour via C1.
  EXPECT_EQ(p.set_link_up(2, false), 2);
  EXPECT_EQ(p.set_link_up(2, false), 0);  // idempotent
  ASSERT_TRUE(p.has_route(0, 2));
  EXPECT_EQ(p.route(0, 2).size(), 2u);
  EXPECT_DOUBLE_EQ(p.route_bottleneck_bw(0, 2), 10.0);
  EXPECT_NO_THROW(p.validate());

  // Down C0-C1 too: C0 is fully cut off (4 routes dropped: 0<->1, 0<->2).
  EXPECT_EQ(p.set_link_up(0, false), 4);
  EXPECT_FALSE(p.has_route(0, 1));
  EXPECT_FALSE(p.has_route(2, 0));
  EXPECT_TRUE(p.has_route(1, 2));

  // Restore C0-C2: the four orphaned pairs are offered routes again.
  EXPECT_EQ(p.set_link_up(2, true), 4);
  EXPECT_TRUE(p.has_route(0, 1));  // via r2 now
  EXPECT_EQ(p.route(0, 1).size(), 2u);
  EXPECT_NO_THROW(p.validate());

  // A down link rejects explicit routes through it.
  EXPECT_THROW(p.set_route(0, 1, {0}), Error);
}

TEST(Platform, RemoveClusterShiftsIdsAndKeepsOtherRoutes) {
  Platform p = triangle();
  p.remove_cluster(1);
  ASSERT_EQ(p.num_clusters(), 2);
  // Old C2 is now cluster 1; the 0<->1 routes are old 0<->2 (direct link).
  EXPECT_EQ(p.cluster(1).name, "C2");
  ASSERT_TRUE(p.has_route(0, 1));
  EXPECT_DOUBLE_EQ(p.route_bottleneck_bw(0, 1), 30.0);
  EXPECT_NO_THROW(p.validate());
  // The removed cluster's routes left the link incidence too.
  EXPECT_EQ(p.num_routes_through(0), 0);
  EXPECT_EQ(p.num_routes_through(1), 0);
  EXPECT_EQ(p.num_routes_through(2), 2);
  // Incremental updates keep working against the shifted ids.
  p.set_link_bandwidth(2, 4.0);
  EXPECT_DOUBLE_EQ(p.route_bottleneck_bw(1, 0), 4.0);
}

TEST(Platform, ClearClusterRoutesAndRerouteMissing) {
  Platform p = triangle();
  EXPECT_EQ(p.clear_cluster_routes(1), 4);  // 1<->0, 1<->2
  EXPECT_FALSE(p.has_route(1, 0));
  EXPECT_TRUE(p.has_route(0, 2));
  EXPECT_EQ(p.num_routes_through(0), 0);
  EXPECT_EQ(p.reroute_missing_pairs(), 4);
  EXPECT_TRUE(p.has_route(1, 0));
  EXPECT_NO_THROW(p.validate());
}

TEST(Platform, RecoveryIsConfinedToSeveredPairs) {
  // A deliberately partial route table: the triangle is fully linked but
  // only the 0<->1 pairs are routed (an author-imposed isolation
  // policy). A failure/repair cycle must not quietly route the pairs
  // the table excluded.
  Platform p;
  const RouterId r0 = p.add_router();
  const RouterId r1 = p.add_router();
  const RouterId r2 = p.add_router();
  p.add_cluster(100, 50, r0);
  p.add_cluster(100, 50, r1);
  p.add_cluster(100, 50, r2);
  const LinkId l01 = p.add_backbone(r0, r1, 10, 4);
  p.add_backbone(r1, r2, 20, 4);
  p.add_backbone(r0, r2, 30, 4);
  p.set_route(0, 1, {l01});
  p.set_route(1, 0, {l01});

  // Down: both routed pairs detour via r2; nothing else appears.
  EXPECT_EQ(p.set_link_up(l01, false), 2);
  EXPECT_TRUE(p.has_route(0, 1));
  EXPECT_FALSE(p.has_route(0, 2));
  EXPECT_FALSE(p.has_route(2, 1));
  // Up: the detoured pairs kept routes, so nothing was severed and the
  // repair is a no-op — in particular the excluded pairs stay excluded.
  EXPECT_EQ(p.set_link_up(l01, true), 0);
  EXPECT_FALSE(p.has_route(0, 2));
  EXPECT_FALSE(p.has_route(1, 2));

  // Cut both of C0's links: its pairs are severed; repair restores
  // exactly them and still never routes the excluded pairs.
  (void)p.set_link_up(l01, false);
  EXPECT_EQ(p.set_link_up(2, false), 2);  // 0<->1 detours die with (r0,r2)
  EXPECT_FALSE(p.has_route(0, 1));
  EXPECT_EQ(p.set_link_up(2, true), 2);
  EXPECT_TRUE(p.has_route(0, 1));
  EXPECT_TRUE(p.has_route(1, 0));
  EXPECT_FALSE(p.has_route(0, 2));
  EXPECT_FALSE(p.has_route(2, 1));
  EXPECT_NO_THROW(p.validate());
}

TEST(Platform, IncrementalCacheMatchesFullRecomputeOracle) {
  // Randomized cross-check: a stream of bandwidth rescales served by the
  // incremental path must leave the caches exactly where a full
  // recompute puts them.
  Platform p;
  const int n = 9;
  for (int i = 0; i < n; ++i) p.add_router();
  for (int i = 0; i < n; ++i) p.add_cluster(100, 50, i);
  Rng rng(71);
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b)
      if (rng.bernoulli(0.5))
        p.add_backbone(a, b, rng.uniform(5.0, 50.0),
                       static_cast<int>(rng.uniform_int(1, 40)));
  p.compute_shortest_path_routes();
  Platform oracle = p;

  for (int step = 0; step < 50; ++step) {
    const auto link = static_cast<LinkId>(rng.index(p.num_links()));
    const double bw = rng.uniform(1.0, 60.0);
    p.set_link_bandwidth(link, bw);
    oracle.set_link_bandwidth(link, bw);
  }
  oracle.compute_shortest_path_routes();
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      ASSERT_EQ(p.has_route(a, b), oracle.has_route(a, b));
      if (!p.has_route(a, b)) continue;
      EXPECT_EQ(p.route_bottleneck_bw(a, b), oracle.route_bottleneck_bw(a, b))
          << a << "->" << b;
      EXPECT_EQ(p.route_latency(a, b), oracle.route_latency(a, b));
    }
  }
}

}  // namespace
}  // namespace dls::platform
