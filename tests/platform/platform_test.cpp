#include "platform/platform.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace dls::platform {
namespace {

/// Two clusters joined by a single backbone link.
Platform two_cluster_line() {
  Platform p;
  const RouterId r0 = p.add_router("r0");
  const RouterId r1 = p.add_router("r1");
  p.add_cluster(100, 50, r0, "C0");
  p.add_cluster(100, 60, r1, "C1");
  p.add_backbone(r0, r1, 10, 4, "bb");
  return p;
}

TEST(Platform, BuildsAndValidates) {
  Platform p = two_cluster_line();
  EXPECT_EQ(p.num_clusters(), 2);
  EXPECT_EQ(p.num_routers(), 2);
  EXPECT_EQ(p.num_links(), 1);
  EXPECT_EQ(p.cluster(0).speed, 100);
  EXPECT_EQ(p.cluster(1).gateway_bw, 60);
  EXPECT_EQ(p.link(0).max_connections, 4);
  EXPECT_NO_THROW(p.validate());
}

TEST(Platform, RejectsInvalidInputs) {
  Platform p;
  EXPECT_THROW(p.add_cluster(100, 50, 0), Error);  // no routers yet
  const RouterId r = p.add_router();
  EXPECT_THROW(p.add_cluster(-1, 50, r), Error);
  EXPECT_THROW(p.add_cluster(100, 0, r), Error);
  EXPECT_THROW(p.add_backbone(r, r, 10, 1), Error);   // self-loop
  const RouterId r2 = p.add_router();
  EXPECT_THROW(p.add_backbone(r, r2, 0, 1), Error);   // zero bw
  EXPECT_THROW(p.add_backbone(r, r2, 10, -1), Error); // negative maxcon
}

TEST(Platform, LocalRouteAlwaysExists) {
  Platform p = two_cluster_line();
  EXPECT_TRUE(p.has_route(0, 0));
  EXPECT_TRUE(p.route(0, 0).empty());
}

TEST(Platform, SetRouteValidatesPath) {
  Platform p = two_cluster_line();
  EXPECT_FALSE(p.has_route(0, 1));
  p.set_route(0, 1, {0});
  EXPECT_TRUE(p.has_route(0, 1));
  ASSERT_EQ(p.route(0, 1).size(), 1u);
  EXPECT_FALSE(p.has_route(1, 0));  // directed table

  EXPECT_THROW(p.set_route(0, 0, {}), Error);   // local
  EXPECT_THROW(p.set_route(0, 1, {5}), Error);  // dangling link
}

TEST(Platform, SetRouteRejectsBrokenPath) {
  Platform p;
  const RouterId r0 = p.add_router();
  const RouterId r1 = p.add_router();
  const RouterId r2 = p.add_router();
  p.add_cluster(1, 1, r0);
  p.add_cluster(1, 1, r2);
  const LinkId l01 = p.add_backbone(r0, r1, 1, 1);
  const LinkId l12 = p.add_backbone(r1, r2, 1, 1);
  // Correct path works, wrong order does not, incomplete does not.
  EXPECT_THROW(p.set_route(0, 1, {l12, l01}), Error);
  EXPECT_THROW(p.set_route(0, 1, {l01, l12, l12}), Error);
  p.set_route(0, 1, {l01, l12});
  EXPECT_EQ(p.route(0, 1).size(), 2u);
}

TEST(Platform, ClearRoute) {
  Platform p = two_cluster_line();
  p.set_route(0, 1, {0});
  p.clear_route(0, 1);
  EXPECT_FALSE(p.has_route(0, 1));
}

TEST(Platform, BottleneckBandwidth) {
  Platform p;
  const RouterId r0 = p.add_router();
  const RouterId r1 = p.add_router();
  const RouterId r2 = p.add_router();
  p.add_cluster(1, 1, r0);
  p.add_cluster(1, 1, r2);
  const LinkId fat = p.add_backbone(r0, r1, 100, 5);
  const LinkId thin = p.add_backbone(r1, r2, 7, 5);
  p.set_route(0, 1, {fat, thin});
  EXPECT_DOUBLE_EQ(p.route_bottleneck_bw(0, 1), 7.0);
  // Local: empty route -> infinite backbone bandwidth.
  EXPECT_TRUE(std::isinf(p.route_bottleneck_bw(0, 0)));
}

TEST(Platform, SameRouterClustersHaveEmptyRoute) {
  Platform p;
  const RouterId r = p.add_router();
  p.add_cluster(1, 1, r);
  p.add_cluster(1, 1, r);
  p.compute_shortest_path_routes();
  EXPECT_TRUE(p.has_route(0, 1));
  EXPECT_TRUE(p.route(0, 1).empty());
  EXPECT_TRUE(std::isinf(p.route_bottleneck_bw(0, 1)));
}

TEST(Platform, ShortestPathRoutesLine) {
  // r0 - r1 - r2 - r3 line; clusters at both ends.
  Platform p;
  std::vector<RouterId> r;
  for (int i = 0; i < 4; ++i) r.push_back(p.add_router());
  p.add_cluster(1, 1, r[0]);
  p.add_cluster(1, 1, r[3]);
  std::vector<LinkId> l;
  for (int i = 0; i < 3; ++i) l.push_back(p.add_backbone(r[i], r[i + 1], 10, 2));
  p.compute_shortest_path_routes();
  ASSERT_TRUE(p.has_route(0, 1));
  const auto route = p.route(0, 1);
  ASSERT_EQ(route.size(), 3u);
  EXPECT_EQ(route[0], l[0]);
  EXPECT_EQ(route[1], l[1]);
  EXPECT_EQ(route[2], l[2]);
}

TEST(Platform, ShortestPathPrefersFewestHops) {
  // Triangle with a 2-hop detour: direct link must win.
  Platform p;
  const RouterId r0 = p.add_router();
  const RouterId r1 = p.add_router();
  const RouterId r2 = p.add_router();
  p.add_cluster(1, 1, r0);
  p.add_cluster(1, 1, r2);
  p.add_backbone(r0, r1, 100, 9);
  p.add_backbone(r1, r2, 100, 9);
  const LinkId direct = p.add_backbone(r0, r2, 1, 1);
  p.compute_shortest_path_routes();
  ASSERT_EQ(p.route(0, 1).size(), 1u);
  EXPECT_EQ(p.route(0, 1)[0], direct);
}

TEST(Platform, UnreachablePairsHaveNoRoute) {
  Platform p;
  const RouterId r0 = p.add_router();
  const RouterId r1 = p.add_router();
  p.add_cluster(1, 1, r0);
  p.add_cluster(1, 1, r1);
  p.compute_shortest_path_routes();  // no links at all
  EXPECT_FALSE(p.has_route(0, 1));
  EXPECT_FALSE(p.has_route(1, 0));
  EXPECT_THROW(static_cast<void>(p.route(0, 1)), Error);
}

TEST(Platform, RoutesSurviveClusterAddition) {
  Platform p = two_cluster_line();
  p.set_route(0, 1, {0});
  const RouterId r2 = p.add_router();
  p.add_backbone(1, r2, 5, 1);
  p.add_cluster(100, 10, r2, "C2");
  EXPECT_TRUE(p.has_route(0, 1));  // old route preserved across migration
  EXPECT_EQ(p.route(0, 1).size(), 1u);
  EXPECT_FALSE(p.has_route(0, 2));
  EXPECT_NO_THROW(p.validate());
}

TEST(Platform, SubdivideLinkPreservesBottleneck) {
  Platform p = two_cluster_line();
  const RouterId mid = p.add_router("mid");
  const LinkId second = p.subdivide_link(0, mid);
  EXPECT_EQ(p.num_links(), 2);
  EXPECT_EQ(p.link(0).b, mid);
  EXPECT_EQ(p.link(second).a, mid);
  EXPECT_EQ(p.link(second).bw, p.link(0).bw);
  p.compute_shortest_path_routes();
  ASSERT_TRUE(p.has_route(0, 1));
  EXPECT_EQ(p.route(0, 1).size(), 2u);
  EXPECT_DOUBLE_EQ(p.route_bottleneck_bw(0, 1), 10.0);
}

TEST(Platform, ValidateCatchesCorruptRoute) {
  Platform p = two_cluster_line();
  p.set_route(0, 1, {0});
  EXPECT_NO_THROW(p.validate());
}

TEST(Platform, RouteIsDirectional) {
  Platform p = two_cluster_line();
  p.compute_shortest_path_routes();
  EXPECT_TRUE(p.has_route(0, 1));
  EXPECT_TRUE(p.has_route(1, 0));
  // Same single link both ways for this topology.
  EXPECT_EQ(p.route(0, 1)[0], p.route(1, 0)[0]);
}

/// Route metric queries are served from a per-pair cache; every mutator
/// must keep it consistent with the installed routes.
TEST(Platform, RouteMetricCacheFollowsRouteEdits) {
  Platform p;
  const RouterId r0 = p.add_router();
  const RouterId r1 = p.add_router();
  const RouterId r2 = p.add_router();
  p.add_cluster(100, 50, r0, "C0");
  p.add_cluster(100, 60, r1, "C1");
  const LinkId direct = p.add_backbone(r0, r1, 10, 4, "direct", 1.0);
  const LinkId up = p.add_backbone(r0, r2, 3, 4, "up", 2.0);
  const LinkId down = p.add_backbone(r2, r1, 8, 4, "down", 0.5);

  p.set_route(0, 1, {direct});
  EXPECT_DOUBLE_EQ(p.route_bottleneck_bw(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(p.route_latency(0, 1), 1.0);

  // Re-routing the pair through the detour updates both cached metrics.
  p.set_route(0, 1, {up, down});
  EXPECT_DOUBLE_EQ(p.route_bottleneck_bw(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(p.route_latency(0, 1), 2.5);

  p.clear_route(0, 1);
  EXPECT_THROW(p.route_bottleneck_bw(0, 1), Error);

  // BFS reinstall repopulates the cache (shortest route is the direct link).
  p.compute_shortest_path_routes();
  EXPECT_DOUBLE_EQ(p.route_bottleneck_bw(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(p.route_latency(0, 1), 1.0);

  // Local pairs stay unconstrained by the backbone.
  EXPECT_TRUE(std::isinf(p.route_bottleneck_bw(0, 0)));
  EXPECT_DOUBLE_EQ(p.route_latency(1, 1), 0.0);
}

TEST(Platform, RouteMetricCacheSurvivesClusterGrowth) {
  Platform p = two_cluster_line();
  p.compute_shortest_path_routes();
  ASSERT_DOUBLE_EQ(p.route_bottleneck_bw(0, 1), 10.0);
  // Adding a cluster migrates the route table and its metric cache.
  const RouterId r2 = p.add_router();
  p.add_backbone(1, r2, 5, 1);
  p.add_cluster(100, 10, r2, "C2");
  EXPECT_DOUBLE_EQ(p.route_bottleneck_bw(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(p.route_latency(0, 1), 0.0);
}

TEST(Platform, RouteMetricCacheInvalidatedBySubdivide) {
  Platform p = two_cluster_line();
  p.compute_shortest_path_routes();
  ASSERT_TRUE(p.has_route(0, 1));
  const RouterId mid = p.add_router("mid");
  p.subdivide_link(0, mid);
  // Routes (and metrics) are dropped until recomputed.
  EXPECT_FALSE(p.has_route(0, 1));
  EXPECT_THROW(p.route_bottleneck_bw(0, 1), Error);
  p.compute_shortest_path_routes();
  EXPECT_DOUBLE_EQ(p.route_bottleneck_bw(0, 1), 10.0);
}

}  // namespace
}  // namespace dls::platform
