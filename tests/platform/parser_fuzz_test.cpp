// Robustness fuzzing of the platform text parser: arbitrary mutations of
// valid files must either parse to a valid platform or throw dls::Error —
// never crash, hang, or produce an invalid object.
#include <gtest/gtest.h>

#include <string>

#include "platform/generator.hpp"
#include "platform/serialization.hpp"
#include "support/rng.hpp"

namespace dls::platform {
namespace {

std::string valid_text(Rng& rng) {
  GeneratorParams params;
  params.num_clusters = static_cast<int>(rng.uniform_int(2, 8));
  params.connectivity = 0.6;
  params.ensure_connected = true;
  return to_text(generate_platform(params, rng));
}

TEST(ParserFuzz, RandomByteMutations) {
  Rng rng(1);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string text = valid_text(rng);
    const int mutations = static_cast<int>(rng.uniform_int(1, 6));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.index(text.size());
      switch (rng.uniform_int(0, 2)) {
        case 0:  // flip to a random printable byte
          text[pos] = static_cast<char>(rng.uniform_int(32, 126));
          break;
        case 1:  // delete a byte
          text.erase(pos, 1);
          break;
        default:  // duplicate a byte
          text.insert(pos, 1, text[pos]);
          break;
      }
    }
    try {
      const Platform p = from_text(text);
      p.validate();  // whatever parses must be internally consistent
      ++parsed;
    } catch (const Error&) {
      ++rejected;
    }
  }
  // Both outcomes must occur: mostly rejections, occasionally benign
  // mutations (e.g. inside a name or a digit).
  EXPECT_GT(rejected, 0);
  EXPECT_GT(parsed + rejected, 0);
}

TEST(ParserFuzz, TruncationsAtEveryLineBoundary) {
  Rng rng(2);
  const std::string text = valid_text(rng);
  for (std::size_t pos = 0; pos < text.size(); ++pos) {
    if (text[pos] != '\n') continue;
    const std::string truncated = text.substr(0, pos + 1);
    try {
      const Platform p = from_text(truncated);
      p.validate();
    } catch (const Error&) {
      // acceptable
    }
  }
}

TEST(ParserFuzz, LineShuffleKeepsInvariantOrErrors) {
  // Reordering lines may break the dense-router-id rule or route
  // references; the parser must reject rather than mis-build.
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    std::string text = valid_text(rng);
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < text.size()) {
      const std::size_t end = text.find('\n', start);
      lines.push_back(text.substr(start, end - start));
      if (end == std::string::npos) break;
      start = end + 1;
    }
    // Swap two random lines after the header.
    if (lines.size() > 3) {
      const std::size_t a = 1 + rng.index(lines.size() - 1);
      const std::size_t b = 1 + rng.index(lines.size() - 1);
      std::swap(lines[a], lines[b]);
    }
    std::string shuffled;
    for (const auto& l : lines) shuffled += l + "\n";
    try {
      const Platform p = from_text(shuffled);
      p.validate();
    } catch (const Error&) {
      // acceptable
    }
  }
}

TEST(ParserFuzz, GarbageInputsNeverCrash) {
  Rng rng(4);
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage;
    const int len = static_cast<int>(rng.uniform_int(0, 200));
    for (int i = 0; i < len; ++i)
      garbage += static_cast<char>(rng.uniform_int(9, 126));
    EXPECT_THROW(static_cast<void>(from_text(garbage)), Error) << trial;
  }
}

}  // namespace
}  // namespace dls::platform
