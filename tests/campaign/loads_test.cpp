// Campaign `loads` axis (ISSUE 8): parse/round-trip of the loads line,
// expansion into count x mix x objective cells, common random numbers
// across objective cells, jobs/shard determinism, and the empty-shard
// regression (a shard past the case count must still produce a valid
// report with zero executed cases, not an error).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "campaign/plan.hpp"
#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "support/error.hpp"

namespace dls::campaign {
namespace {

ScenarioSpec loads_spec() {
  return from_text(
      "dls-campaign 1\n"
      "name loads\n"
      "seed 5\n"
      "replications 2\n"
      "platform grid clusters=6\n"
      "loads count=2,4 mix=uniform objective=sum,maxmin weight-spread=0.5\n");
}

TEST(CampaignLoads, ParsesTheCrossProduct) {
  const ScenarioSpec spec = loads_spec();
  // count x mix x objective = 2 x 1 x 2 scenario cells.
  ASSERT_EQ(spec.scenarios.size(), 4u);
  for (const WorkloadSource& s : spec.scenarios) {
    EXPECT_EQ(s.kind, WorkloadSource::Kind::Loads);
    EXPECT_FALSE(s.stream());
    EXPECT_FALSE(s.offline());
    EXPECT_DOUBLE_EQ(s.weight_spread, 0.5);
  }
  EXPECT_EQ(spec.scenarios[0].load_count, 2);
  EXPECT_EQ(spec.scenarios[0].multi_objective, core::MultiObjective::WeightedSum);
  EXPECT_EQ(spec.scenarios[1].multi_objective, core::MultiObjective::MaxMin);
  EXPECT_EQ(spec.scenarios[2].load_count, 4);
  // Varying-axis labels are distinct.
  std::vector<std::string> labels;
  for (const WorkloadSource& s : spec.scenarios) labels.push_back(s.label);
  std::sort(labels.begin(), labels.end());
  EXPECT_EQ(std::unique(labels.begin(), labels.end()), labels.end());
}

TEST(CampaignLoads, RoundTripIsBitExact) {
  const std::string canonical = to_text(loads_spec());
  const ScenarioSpec reparsed = from_text(canonical);
  EXPECT_EQ(to_text(reparsed), canonical);
  ASSERT_EQ(reparsed.scenarios.size(), 4u);
  EXPECT_EQ(reparsed.scenarios[3].multi_objective, core::MultiObjective::MaxMin);
  EXPECT_EQ(reparsed.scenarios[3].load_count, 4);
}

TEST(CampaignLoads, ContradictionsAreRejected) {
  // Dynamics cannot attach to a loads line (it replays no timeline).
  EXPECT_THROW((void)from_text("dls-campaign 1\n"
                               "platform grid clusters=4\n"
                               "loads count=2\n"
                               "dynamics scenario event-rate=0.1\n"),
               Error);
  EXPECT_THROW((void)from_text("dls-campaign 1\n"
                               "platform grid clusters=4\n"
                               "loads count=0\n"),
               Error);
  EXPECT_THROW((void)from_text("dls-campaign 1\n"
                               "platform grid clusters=4\n"
                               "loads count=2 mix=zipf\n"),
               Error);
  EXPECT_THROW((void)from_text("dls-campaign 1\n"
                               "platform grid clusters=4\n"
                               "loads count=2 objective=max\n"),
               Error);
}

TEST(CampaignLoads, ObjectiveCellsShareTheSampledLoadSets) {
  // The loads stream seed is scenario-independent on purpose: cells
  // that differ only in objective draw identical load sets (common
  // random numbers), so their fairness columns are comparable.
  const ScenarioSpec spec = loads_spec();
  for (int rep = 0; rep < spec.replications; ++rep)
    for (int cell = 0; cell < 1; ++cell)
      EXPECT_EQ(loads_stream_seed(spec, cell, rep),
                loads_stream_seed(spec, cell, rep));
  // Different cells and reps do diverge.
  EXPECT_NE(loads_stream_seed(spec, 0, 0), loads_stream_seed(spec, 1, 0));
  EXPECT_NE(loads_stream_seed(spec, 0, 0), loads_stream_seed(spec, 0, 1));
}

TEST(CampaignLoads, MinWeightedAgreesAcrossObjectiveCellsUnderMaxMin) {
  // With shared load sets, the maxmin cell's "objective" metric equals
  // its own "min_weighted" and upper-bounds the sum cell's min_weighted.
  CampaignReport report;
  RunnerOptions opt;
  opt.jobs = 1;
  report = run_campaign(loads_spec(), opt);
  ASSERT_EQ(report.groups.size(), 4u);
  for (const GroupAggregate& g : report.groups) {
    EXPECT_TRUE(g.loads);
    EXPECT_EQ(g.method, "*");
  }
  const auto metric = [](const GroupAggregate& g, const std::string& name) {
    for (const MetricAggregate& m : g.metrics)
      if (m.name == name) return m.acc.mean();
    ADD_FAILURE() << "missing metric " << name;
    return 0.0;
  };
  // Groups arrive cell-major: [N=2 sum, N=2 maxmin, N=4 sum, N=4 maxmin].
  for (std::size_t base = 0; base < 4; base += 2) {
    const GroupAggregate& sum = report.groups[base];
    const GroupAggregate& maxmin = report.groups[base + 1];
    EXPECT_EQ(sum.objective, "sum");
    EXPECT_EQ(maxmin.objective, "maxmin");
    EXPECT_NEAR(metric(maxmin, "objective"), metric(maxmin, "min_weighted"),
                1e-9);
    EXPECT_GE(metric(maxmin, "min_weighted") + 1e-9,
              metric(sum, "min_weighted"));
  }
}

TEST(CampaignLoads, JobsAndShardsNeverChangeTheCases) {
  const ScenarioSpec spec = loads_spec();
  const auto collect = [&spec](RunnerOptions opt) {
    std::vector<CaseRecord> records;
    opt.case_sink = [&records](const CampaignReport&, const CaseRecord& r) {
      records.push_back(r);
    };
    (void)run_campaign(spec, opt);
    return records;
  };
  const std::vector<CaseRecord> serial = collect({.jobs = 1});
  const std::vector<CaseRecord> parallel = collect({.jobs = 4});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_EQ(serial[i].values, parallel[i].values) << "case " << i;

  // Shard union == full run (loads values are deterministic, so exact).
  std::vector<CaseRecord> stitched;
  for (int shard = 0; shard < 3; ++shard) {
    RunnerOptions opt;
    opt.jobs = 2;
    opt.shard_index = shard;
    opt.shard_count = 3;
    for (const CaseRecord& r : collect(opt)) stitched.push_back(r);
  }
  ASSERT_EQ(stitched.size(), serial.size());
  std::sort(stitched.begin(), stitched.end(),
            [](const CaseRecord& a, const CaseRecord& b) {
              return a.index < b.index;
            });
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(stitched[i].index, serial[i].index);
    EXPECT_EQ(stitched[i].values, serial[i].values) << "case " << i;
  }
}

TEST(CampaignLoads, EmptyShardYieldsValidEmptyReport) {
  // Regression (ISSUE 8 satellite): a shard index past the case count
  // used to be easy to mistake for a spec error. It must produce a
  // normal report — full group skeleton, zero executed cases — and the
  // JSON writer must emit valid output for it.
  const ScenarioSpec spec = loads_spec();  // 8 cases
  RunnerOptions opt;
  opt.jobs = 1;
  opt.shard_index = 11;
  opt.shard_count = 12;
  const CampaignReport report = run_campaign(spec, opt);
  EXPECT_EQ(report.total_cases, 8u);
  EXPECT_EQ(report.executed_cases, 0u);
  ASSERT_EQ(report.groups.size(), 4u);
  for (const GroupAggregate& g : report.groups)
    for (const MetricAggregate& m : g.metrics)
      EXPECT_EQ(m.acc.count(), 0);
  std::ostringstream json;
  write_report_json(report, json);
  EXPECT_NE(json.str().find("\"executed\":0"), std::string::npos);
}

}  // namespace
}  // namespace dls::campaign
