// .campaign parser tests: round-trip bit-exactness, defaults, and
// line-numbered diagnostics on malformed or contradictory specs.
#include "campaign/spec.hpp"

#include <gtest/gtest.h>

#include <string>

#include "support/error.hpp"

namespace dls::campaign {
namespace {

const char* kFullSpec =
    "dls-campaign 1\n"
    "name everything\n"
    "seed 99\n"
    "replications 3\n"
    "payoff-spread 0.25\n"
    "max-support-change 6\n"
    "rate-model sim\n"
    "policy tcp\n"
    "window 25\n"
    "objective maxmin sum\n"
    "method g lprg lp\n"
    "warm auto never\n"
    "exhaust take drop\n"
    "platform generate clusters=6,10 connectivity=0.5 connected=1\n"
    "platform grid clusters=5,15\n"
    "platform file path=data/grid_federation.platform\n"
    "workload none\n"
    "workload batch count=4 mean-load=300\n"
    "workload poisson arrivals=20 rate=2 mean-load=250 load-spread=0.25\n"
    "dynamics scenario event-rate=0.1 severity=0.75 horizon=500\n"
    "workload onoff arrivals=10 burst-rate=3 mean-on=5 mean-off=15\n"
    "dynamics trace path=data/x.events\n"
    "workload trace path=data/x.workload\n";

TEST(CampaignSpec, ParsesEveryAxis) {
  const ScenarioSpec spec = from_text(kFullSpec);
  EXPECT_EQ(spec.name, "everything");
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_EQ(spec.replications, 3);
  EXPECT_DOUBLE_EQ(spec.payoff_spread, 0.25);
  EXPECT_EQ(spec.max_support_change, 6);
  EXPECT_EQ(spec.rate_model, online::RateModel::Simulated);
  EXPECT_EQ(spec.sim_policy, sim::SharingPolicy::TcpRttBias);
  EXPECT_DOUBLE_EQ(spec.sim_window_units, 25.0);
  ASSERT_EQ(spec.objectives.size(), 2u);
  ASSERT_EQ(spec.methods.size(), 3u);
  EXPECT_EQ(spec.methods[2], Method::Lp);
  ASSERT_EQ(spec.warm.size(), 2u);
  ASSERT_EQ(spec.exhaust.size(), 2u);
  // generate clusters=6,10 expands into two cells + 2 grid + 1 file.
  ASSERT_EQ(spec.platforms.size(), 5u);
  EXPECT_EQ(spec.platforms[0].params.num_clusters, 6);
  EXPECT_EQ(spec.platforms[1].params.num_clusters, 10);
  EXPECT_TRUE(spec.platforms[0].params.ensure_connected);
  EXPECT_EQ(spec.platforms[2].kind, PlatformSource::Kind::Grid);
  EXPECT_EQ(spec.platforms[3].grid_clusters, 15);
  EXPECT_EQ(spec.platforms[4].kind, PlatformSource::Kind::File);
  EXPECT_EQ(spec.platforms[4].path, "data/grid_federation.platform");
  // Scenarios: none, batch, poisson+scenario-dynamics, onoff+trace-
  // dynamics, workload trace.
  ASSERT_EQ(spec.scenarios.size(), 5u);
  EXPECT_TRUE(spec.scenarios[0].offline());
  EXPECT_EQ(spec.scenarios[1].kind, WorkloadSource::Kind::Batch);
  EXPECT_EQ(spec.scenarios[2].dyn, WorkloadSource::DynKind::Scenario);
  EXPECT_DOUBLE_EQ(spec.scenarios[2].severity, 0.75);
  EXPECT_EQ(spec.scenarios[3].dyn, WorkloadSource::DynKind::Trace);
  EXPECT_EQ(spec.scenarios[3].events_path, "data/x.events");
  EXPECT_EQ(spec.scenarios[4].kind, WorkloadSource::Kind::Trace);
  // Derived labels are unique and stable.
  EXPECT_EQ(spec.platforms[0].label, "gen:clusters=6");
  EXPECT_EQ(spec.platforms[2].label, "grid:K=5");
  EXPECT_EQ(spec.scenarios[2].label, "poisson");
}

TEST(CampaignSpec, RoundTripIsBitExact) {
  const ScenarioSpec spec = from_text(kFullSpec);
  const std::string canonical = to_text(spec);
  const ScenarioSpec reparsed = from_text(canonical);
  // write -> read -> write must be byte-identical.
  EXPECT_EQ(to_text(reparsed), canonical);
}

TEST(CampaignSpec, DedupedLabelsSurviveTheRoundTrip) {
  // Two identical unlabeled workload lines force a deduplication
  // suffix; the suffix must not collide with the comment character, or
  // the canonical re-read silently drops every following key=value.
  const ScenarioSpec spec = from_text(
      "dls-campaign 1\n"
      "platform generate clusters=4\n"
      "workload poisson arrivals=7 rate=2\n"
      "workload poisson arrivals=9 rate=3\n");
  ASSERT_EQ(spec.scenarios.size(), 2u);
  EXPECT_NE(spec.scenarios[0].label, spec.scenarios[1].label);
  const std::string canonical = to_text(spec);
  const ScenarioSpec reparsed = from_text(canonical);
  EXPECT_EQ(to_text(reparsed), canonical);
  ASSERT_EQ(reparsed.scenarios.size(), 2u);
  EXPECT_EQ(reparsed.scenarios[1].poisson.count, 9);
  EXPECT_DOUBLE_EQ(reparsed.scenarios[1].poisson.rate, 3.0);
}

TEST(CampaignSpec, DefaultsAreFilledIn) {
  const ScenarioSpec spec = from_text(
      "dls-campaign 1\n"
      "platform generate clusters=4\n");
  EXPECT_EQ(spec.name, "campaign");
  EXPECT_EQ(spec.replications, 1);
  ASSERT_EQ(spec.scenarios.size(), 1u);  // defaults to the offline sweep
  EXPECT_TRUE(spec.scenarios[0].offline());
  EXPECT_EQ(spec.methods.size(), 3u);    // g lpr lprg
  EXPECT_EQ(spec.objectives.size(), 1u);
  // Round trip holds for the minimal spec too.
  EXPECT_EQ(to_text(from_text(to_text(spec))), to_text(spec));
}

TEST(CampaignSpec, CommentsAndBlankLinesAreSkipped) {
  const ScenarioSpec spec = from_text(
      "# a comment\n"
      "\n"
      "dls-campaign 1\n"
      "name c  # trailing comment\n"
      "platform generate clusters=4  # another\n");
  EXPECT_EQ(spec.name, "c");
  EXPECT_EQ(spec.platforms.size(), 1u);
}

/// Asserts the parse fails and the message names the expected line.
void expect_fail_at(const std::string& text, int line,
                    const std::string& needle) {
  try {
    (void)from_text(text);
    FAIL() << "expected a parse failure mentioning '" << needle << "'";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line " + std::to_string(line)), std::string::npos)
        << what;
    EXPECT_NE(what.find(needle), std::string::npos) << what;
  }
}

TEST(CampaignSpec, DiagnosticsNameTheLine) {
  // Bad header (no line number: nothing was parsed yet).
  EXPECT_THROW((void)from_text("dls-workload 1\n"), Error);
  EXPECT_THROW((void)from_text(""), Error);
  // Unknown keyword.
  expect_fail_at("dls-campaign 1\nfrobnicate 3\n", 2, "unknown keyword");
  // Unknown key on a platform line.
  expect_fail_at("dls-campaign 1\nplatform generate clusterz=4\n", 2,
                 "unknown key 'clusterz'");
  // Malformed number.
  expect_fail_at("dls-campaign 1\nplatform generate clusters=abc\n", 2,
                 "malformed number");
  // Truncated: missing value after '='.
  expect_fail_at("dls-campaign 1\nplatform generate clusters=\n", 2,
                 "clusters");
  // Missing path.
  expect_fail_at("dls-campaign 1\nplatform file label=x\n", 2, "missing path=");
  // Unknown axis values.
  expect_fail_at("dls-campaign 1\nmethod g warp\nplatform grid clusters=4\n", 2,
                 "unknown method 'warp'");
  expect_fail_at("dls-campaign 1\nobjective best\nplatform grid clusters=4\n", 2,
                 "unknown objective");
  // Out-of-range values.
  expect_fail_at("dls-campaign 1\nreplications 0\n", 2, "replication count");
  expect_fail_at("dls-campaign 1\npayoff-spread 1.5\n", 2, "payoff spread");
}

TEST(CampaignSpec, ContradictionsAreRejectedWithLines) {
  // dynamics with no workload to attach to.
  expect_fail_at(
      "dls-campaign 1\nplatform grid clusters=4\ndynamics scenario\n", 3,
      "no preceding workload");
  // dynamics after an offline workload.
  expect_fail_at(
      "dls-campaign 1\nplatform grid clusters=4\nworkload none\n"
      "dynamics scenario event-rate=0.1\n",
      4, "requires a stream workload");
  // Two dynamics lines on one workload.
  expect_fail_at(
      "dls-campaign 1\nplatform grid clusters=4\n"
      "workload poisson arrivals=5\ndynamics scenario\ndynamics scenario\n",
      5, "duplicate dynamics");
  // lprr (offline-only) combined with a stream workload: the method
  // line is the contradiction the message points at.
  expect_fail_at(
      "dls-campaign 1\nmethod g lprr\nplatform grid clusters=4\n"
      "workload poisson arrivals=5\n",
      2, "lprr is offline-only");
  // Repeated axis values would expand into indistinguishable duplicate
  // groups; a repeated key on one line is a duplicate, not unknown.
  expect_fail_at("dls-campaign 1\nmethod g g\n", 2, "repeated method 'g'");
  expect_fail_at("dls-campaign 1\nobjective sum sum\n", 2,
                 "repeated objective 'sum'");
  expect_fail_at("dls-campaign 1\nplatform generate clusters=4 clusters=8\n", 2,
                 "duplicate key 'clusters'");
  // Duplicate explicit labels would make report groups (and the
  // static/dynamic degradation pairing) indistinguishable.
  expect_fail_at(
      "dls-campaign 1\nplatform grid clusters=4\n"
      "workload poisson label=x arrivals=5\nworkload poisson label=x arrivals=9\n",
      4, "duplicate label 'x'");
  expect_fail_at(
      "dls-campaign 1\nplatform grid label=p clusters=4\n"
      "platform grid label=p clusters=6\n",
      3, "duplicate label 'p'");
  // Duplicate singleton keys.
  expect_fail_at("dls-campaign 1\nname a\nname b\n", 3, "duplicate 'name'");
  expect_fail_at("dls-campaign 1\nmethod g\nmethod lpr\n", 3,
                 "duplicate 'method'");
  expect_fail_at("dls-campaign 1\npayoff-spread 0.2\npayoff-spread 0.8\n", 3,
                 "duplicate 'payoff-spread'");
  expect_fail_at("dls-campaign 1\nrate-model fluid\nrate-model sim\n", 3,
                 "duplicate 'rate-model'");
  // Trailing tokens on singleton lines.
  expect_fail_at("dls-campaign 1\nseed 42 43\n", 2, "trailing token '43'");
  expect_fail_at("dls-campaign 1\nreplications 2 extra\n", 2,
                 "trailing token 'extra'");
}

}  // namespace
}  // namespace dls::campaign
