// Campaign runner tests: expansion shape, worker-count determinism,
// shard partitioning, artifact caching, and the streaming-vs-
// materialized aggregation oracle.
#include "campaign/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "support/error.hpp"

namespace dls::campaign {
namespace {

/// A small mixed campaign: offline sweep + online stream + dynamics
/// replay over two platform cells — every case kind in one matrix.
ScenarioSpec mixed_spec() {
  return from_text(
      "dls-campaign 1\n"
      "name mixed\n"
      "seed 7\n"
      "replications 2\n"
      "objective maxmin sum\n"
      "method g lprg\n"
      "platform generate clusters=5 connectivity=0.6 connected=1\n"
      "platform grid clusters=4\n"
      "workload none\n"
      "workload poisson arrivals=12 rate=1 mean-load=300\n"
      "dynamics scenario event-rate=0.1 severity=0.5\n");
}

std::vector<CaseRecord> collect(const ScenarioSpec& spec, RunnerOptions opt,
                                CampaignReport* report_out = nullptr) {
  std::vector<CaseRecord> records;
  opt.case_sink = [&records](const CampaignReport&, const CaseRecord& r) {
    records.push_back(r);
  };
  const CampaignReport report = run_campaign(spec, opt);
  if (report_out != nullptr) *report_out = report;
  return records;
}

TEST(CampaignRunner, ExpansionShape) {
  const ScenarioSpec spec = mixed_spec();
  CampaignReport report;
  const std::vector<CaseRecord> records = collect(spec, {.jobs = 1}, &report);
  // 2 cells x [offline: 2 objectives x 1 exhaust] = 4 offline groups;
  // 2 cells x [stream: 2 objectives x 1 warm x 2 methods] = 8 stream.
  EXPECT_EQ(report.groups.size(), 12u);
  // 2 replications per group.
  EXPECT_EQ(report.total_cases, 24u);
  EXPECT_EQ(report.executed_cases, 24u);
  EXPECT_EQ(records.size(), 24u);
  // Records arrive in case order with contiguous indices.
  for (std::size_t i = 0; i < records.size(); ++i)
    EXPECT_EQ(records[i].index, i);
  // Every case ran: metric 0 is "ok" for both kinds.
  for (const CaseRecord& r : records) {
    ASSERT_FALSE(r.values.empty());
    EXPECT_EQ(r.values[0], 1.0) << "case " << r.index;
  }
}

TEST(CampaignRunner, WorkerCountNeverChangesTheReport) {
  const ScenarioSpec spec = mixed_spec();
  CampaignReport serial, parallel;
  const std::vector<CaseRecord> r1 = collect(spec, {.jobs = 1}, &serial);
  const std::vector<CaseRecord> r8 = collect(spec, {.jobs = 8}, &parallel);
  // Per-case records are bit-identical and in the same order.
  ASSERT_EQ(r1.size(), r8.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].index, r8[i].index);
    EXPECT_EQ(r1[i].group, r8[i].group);
    ASSERT_EQ(r1[i].values.size(), r8[i].values.size());
    for (std::size_t v = 0; v < r1[i].values.size(); ++v) {
      if (std::isnan(r1[i].values[v])) {
        EXPECT_TRUE(std::isnan(r8[i].values[v]));
      } else {
        EXPECT_EQ(r1[i].values[v], r8[i].values[v]) << "case " << i;
      }
    }
  }
  // And so is the serialized report (the CI acceptance bar).
  std::ostringstream json1, json8;
  write_report_json(serial, json1);
  write_report_json(parallel, json8);
  EXPECT_EQ(json1.str(), json8.str());
}

TEST(CampaignRunner, StreamingMatchesMaterializedOracle) {
  // Oracle: materialize the jobs=1 case records, fold them through
  // fresh aggregates in case order, and demand bitwise-identical stats
  // from the parallel streaming run for any worker count.
  const ScenarioSpec spec = mixed_spec();
  CampaignReport reference;
  const std::vector<CaseRecord> records = collect(spec, {.jobs = 1}, &reference);

  for (const int jobs : {2, 3, 8}) {
    const CampaignReport streamed = run_campaign(spec, {.jobs = jobs});
    ASSERT_EQ(streamed.groups.size(), reference.groups.size());

    // Rebuild the aggregates from the materialized record vector.
    std::vector<std::vector<MetricAggregate>> rebuilt;
    for (const GroupAggregate& g : reference.groups) {
      std::vector<MetricAggregate> metrics;
      for (const MetricAggregate& m : g.metrics)
        metrics.push_back({m.name, {}, P2Quantile(0.5), P2Quantile(0.95)});
      rebuilt.push_back(std::move(metrics));
    }
    for (const CaseRecord& r : records) {
      for (std::size_t v = 0; v < r.values.size(); ++v) {
        if (std::isnan(r.values[v])) continue;
        MetricAggregate& m = rebuilt[r.group][v];
        m.acc.add(r.values[v]);
        m.p50.add(r.values[v]);
        m.p95.add(r.values[v]);
      }
    }

    for (std::size_t g = 0; g < streamed.groups.size(); ++g) {
      for (std::size_t i = 0; i < streamed.groups[g].metrics.size(); ++i) {
        const MetricAggregate& a = streamed.groups[g].metrics[i];
        const MetricAggregate& b = rebuilt[g][i];
        EXPECT_EQ(a.acc.count(), b.acc.count());
        if (a.acc.count() == 0) continue;
        // Bitwise equality: the streaming path folds in case order, so
        // the floating-point accumulation sequence is identical.
        EXPECT_EQ(a.acc.mean(), b.acc.mean()) << a.name << " jobs=" << jobs;
        EXPECT_EQ(a.acc.stddev(), b.acc.stddev()) << a.name;
        EXPECT_EQ(a.acc.min(), b.acc.min()) << a.name;
        EXPECT_EQ(a.acc.max(), b.acc.max()) << a.name;
        EXPECT_EQ(a.p50.value(), b.p50.value()) << a.name;
        EXPECT_EQ(a.p95.value(), b.p95.value()) << a.name;
      }
    }
  }
}

TEST(CampaignRunner, ShardPartitionUnionEqualsFullRun) {
  const ScenarioSpec spec = mixed_spec();
  const std::vector<CaseRecord> full = collect(spec, {.jobs = 2});

  std::vector<CaseRecord> unioned;
  std::size_t executed_total = 0;
  for (int shard = 0; shard < 3; ++shard) {
    CampaignReport report;
    RunnerOptions opt;
    opt.jobs = 2;
    opt.shard_index = shard;
    opt.shard_count = 3;
    const std::vector<CaseRecord> part = collect(spec, opt, &report);
    EXPECT_EQ(report.total_cases, full.size());
    EXPECT_EQ(part.size(), report.executed_cases);
    executed_total += report.executed_cases;
    for (const CaseRecord& r : part) {
      EXPECT_EQ(r.index % 3, static_cast<std::size_t>(shard));
      unioned.push_back(r);
    }
  }
  EXPECT_EQ(executed_total, full.size());

  std::sort(unioned.begin(), unioned.end(),
            [](const CaseRecord& a, const CaseRecord& b) {
              return a.index < b.index;
            });
  ASSERT_EQ(unioned.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(unioned[i].index, full[i].index);
    EXPECT_EQ(unioned[i].group, full[i].group);
    ASSERT_EQ(unioned[i].values.size(), full[i].values.size());
    for (std::size_t v = 0; v < full[i].values.size(); ++v) {
      if (std::isnan(full[i].values[v])) {
        EXPECT_TRUE(std::isnan(unioned[i].values[v]));
      } else {
        EXPECT_EQ(unioned[i].values[v], full[i].values[v]);
      }
    }
  }
}

TEST(CampaignRunner, PlatformArtifactsAreShared) {
  // 2 cells x 2 replications = 4 distinct platforms; the remaining
  // 24 - 4 case lookups must be cache hits (jobs=1: no benign races).
  const ScenarioSpec spec = mixed_spec();
  const CampaignReport report = run_campaign(spec, {.jobs = 1});
  EXPECT_EQ(report.platform_builds, 4u);
  EXPECT_EQ(report.platform_cache_hits, report.total_cases - 4u);
}

TEST(CampaignRunner, RejectsBadRunnerOptions) {
  const ScenarioSpec spec = mixed_spec();
  RunnerOptions opt;
  opt.shard_index = 2;
  opt.shard_count = 2;
  EXPECT_THROW((void)run_campaign(spec, opt), Error);
  opt = {};
  opt.jobs = -1;
  EXPECT_THROW((void)run_campaign(spec, opt), Error);
  opt = {};
  opt.chunk = 0;
  EXPECT_THROW((void)run_campaign(spec, opt), Error);
}

TEST(CampaignRunner, MissingReferencedFileThrows) {
  const ScenarioSpec spec = from_text(
      "dls-campaign 1\n"
      "platform file path=/nonexistent.platform\n"
      "workload none\n");
  EXPECT_THROW((void)run_campaign(spec, {.jobs = 1}), Error);
}

TEST(CampaignRunner, ScenariosWithEqualWorkloadParamsArePaired) {
  // The workload seed stream is scenario-independent: two scenarios
  // with identical arrival parameters replay literally the same
  // arrivals per replication — the property every static-vs-dynamic
  // degradation report rests on.
  const ScenarioSpec spec = from_text(
      "dls-campaign 1\n"
      "seed 5\nreplications 2\nmethod g\nobjective sum\n"
      "platform generate clusters=5 connected=1\n"
      "workload poisson label=a arrivals=15 rate=1\n"
      "workload poisson label=b arrivals=15 rate=1\n");
  const std::vector<CaseRecord> records = collect(spec, {.jobs = 1});
  ASSERT_EQ(records.size(), 4u);  // scenario a rep 0,1 then b rep 0,1
  for (int rep = 0; rep < 2; ++rep) {
    const CaseRecord& a = records[rep];
    const CaseRecord& b = records[2 + rep];
    ASSERT_EQ(a.values.size(), b.values.size());
    for (std::size_t v = 0; v < a.values.size(); ++v) {
      if (std::isnan(a.values[v])) {
        EXPECT_TRUE(std::isnan(b.values[v]));
      } else {
        EXPECT_EQ(a.values[v], b.values[v]) << "rep " << rep << " value " << v;
      }
    }
  }
}

TEST(CampaignRunner, CsvQuotesLabelsContainingCommas) {
  // Two varying generate axes derive comma-joined labels; the CSV
  // emitter must quote them so columns stay aligned.
  const ScenarioSpec spec = from_text(
      "dls-campaign 1\nmethod g\n"
      "platform generate clusters=4,5 connectivity=0.4,0.6 connected=1\n"
      "workload none\n");
  const CampaignReport report = run_campaign(spec, {.jobs = 1});
  std::ostringstream csv;
  write_report_csv(report, csv);
  std::istringstream lines(csv.str());
  std::string line;
  std::getline(lines, line);
  const auto count_unquoted_commas = [](const std::string& s) {
    int commas = 0;
    bool quoted = false;
    for (const char c : s) {
      if (c == '"') quoted = !quoted;
      if (c == ',' && !quoted) ++commas;
    }
    return commas;
  };
  const int header_commas = count_unquoted_commas(line);
  while (std::getline(lines, line)) {
    EXPECT_EQ(count_unquoted_commas(line), header_commas) << line;
  }
  EXPECT_NE(csv.str().find("\"gen:clusters=4,connectivity=0.4\""),
            std::string::npos);
}

TEST(CampaignRunner, MethodAxisGatesTheOfflineLpWork) {
  // A g-only campaign must not report (or pay for) the LP-based
  // rounding heuristics: the metric list carries just ok/ratio_g/lp.
  const ScenarioSpec spec = from_text(
      "dls-campaign 1\nmethod g\n"
      "platform generate clusters=4 connected=1\nworkload none\n");
  const CampaignReport report = run_campaign(spec, {.jobs = 1});
  ASSERT_EQ(report.groups.size(), 1u);
  std::vector<std::string> names;
  for (const MetricAggregate& m : report.groups[0].metrics) names.push_back(m.name);
  EXPECT_EQ(names, (std::vector<std::string>{"ok", "ratio_g", "lp_bound"}));
  EXPECT_EQ(report.groups[0].metrics[0].acc.mean(), 1.0);  // case ran ok
}

TEST(CampaignRunner, SinkExceptionsPropagateInsteadOfDeadlocking) {
  // A throwing case_sink must surface as an error from run_campaign —
  // not stall the reorder buffer with a position that never arrives.
  const ScenarioSpec spec = mixed_spec();
  for (const int jobs : {1, 4}) {
    RunnerOptions opt;
    opt.jobs = jobs;
    int delivered = 0;
    opt.case_sink = [&delivered](const CampaignReport&, const CaseRecord&) {
      if (++delivered == 3) throw Error("sink exploded");
    };
    EXPECT_THROW((void)run_campaign(spec, opt), Error) << "jobs=" << jobs;
  }
}

TEST(CampaignRunner, SimWindowUnitsReachTheEngine) {
  // rate-model sim + bounded-window sharing: the spec's window size
  // must change the replay. The platform needs latency: BoundedWindow
  // caps each connection at window/RTT, so a zero-latency platform
  // leaves any window vacuous.
  const char* base =
      "dls-campaign 1\nseed 4\nmethod lprg\nobjective maxmin\n"
      "rate-model sim\npolicy window\n"
      "platform generate clusters=6 heterogeneity=0.8 latency=20 connected=1\n"
      "workload poisson arrivals=15 rate=2 mean-load=2000\n";
  ScenarioSpec tight = from_text(base);
  tight.sim_window_units = 1.0;
  ScenarioSpec loose = from_text(base);
  loose.sim_window_units = 200.0;
  std::ostringstream a, b;
  write_report_json(run_campaign(tight, {.jobs = 1}), a);
  write_report_json(run_campaign(loose, {.jobs = 1}), b);
  EXPECT_NE(a.str(), b.str());
}

TEST(CampaignRunner, ChunkSizeNeverChangesTheReport) {
  const ScenarioSpec spec = mixed_spec();
  std::ostringstream a, b;
  RunnerOptions opt;
  opt.jobs = 4;
  opt.chunk = 1;
  write_report_json(run_campaign(spec, opt), a);
  opt.chunk = 5;
  write_report_json(run_campaign(spec, opt), b);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace dls::campaign
