// The incremental simulation engine (sim/engine.hpp) against oracles:
// its live allocation must stay weighted-max-min fair after every event
// (progressive filling is only re-run over dirty components, so this is
// the property the component decomposition has to preserve), and the
// Rescan reference engine must agree with it end to end.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/heuristics.hpp"
#include "core/schedule.hpp"
#include "platform/generator.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace dls::sim {
namespace {

using core::Objective;
using core::SteadyStateProblem;

/// Random engine workload: resources with random capacities; items with
/// random resource subsets, caps, weights and sizes (some empty-handed
/// with only a cap, some zero-size).
struct RandomWorkload {
  std::vector<double> capacities;
  std::vector<EngineItem> items;
};

RandomWorkload random_workload(Rng& rng) {
  RandomWorkload w;
  const int num_resources = static_cast<int>(rng.uniform_int(1, 6));
  for (int r = 0; r < num_resources; ++r)
    w.capacities.push_back(rng.uniform(1.0, 100.0));
  const int num_items = static_cast<int>(rng.uniform_int(1, 30));
  for (int i = 0; i < num_items; ++i) {
    EngineItem item;
    item.size = rng.bernoulli(0.1) ? 0.0 : rng.uniform(0.1, 20.0);
    const int degree = static_cast<int>(rng.uniform_int(0, std::min(3, num_resources)));
    for (int d = 0; d < degree; ++d) {
      const int r = static_cast<int>(rng.index(w.capacities.size()));
      bool dup = false;
      for (int used : item.resources) dup |= (used == r);
      if (!dup) item.resources.push_back(r);
    }
    if (item.resources.empty() || rng.bernoulli(0.4))
      item.cap = rng.uniform(0.1, 50.0);
    if (rng.bernoulli(0.3)) item.weight = rng.uniform(0.1, 4.0);
    w.items.push_back(std::move(item));
  }
  return w;
}

/// Builds the from-scratch rate problem over the engine's live items.
FairShareProblem live_problem(const SimEngine& engine, const RandomWorkload& w,
                              std::vector<int>& live_ids) {
  FairShareProblem p;
  p.capacity = w.capacities;
  live_ids.clear();
  for (int i = 0; i < engine.num_items(); ++i) {
    if (!engine.is_live(i)) continue;
    live_ids.push_back(i);
    p.entities.push_back({w.items[i].resources, w.items[i].cap, w.items[i].weight});
  }
  return p;
}

/// Randomized property: after the initial solve and after every event,
/// the incremental engine's rates are the (unique) weighted max-min fair
/// point of the live subproblem — both by the is_max_min_fair oracle and
/// by direct comparison with a from-scratch max_min_fair_rates solve.
class EngineFairnessTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineFairnessTest, LiveRatesStayMaxMinFairAfterEveryEvent) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  const RandomWorkload w = random_workload(rng);
  SimEngine engine(w.capacities, EngineKind::Incremental);
  engine.begin_period(w.items);

  std::vector<int> live_ids;
  int steps = 0;
  do {
    const FairShareProblem p = live_problem(engine, w, live_ids);
    std::vector<double> rates(live_ids.size());
    for (std::size_t j = 0; j < live_ids.size(); ++j)
      rates[j] = engine.rate(live_ids[j]);
    ASSERT_TRUE(is_max_min_fair(p, rates))
        << "after step " << steps << " with " << live_ids.size() << " live items";
    const std::vector<double> oracle = max_min_fair_rates(p);
    for (std::size_t j = 0; j < live_ids.size(); ++j)
      ASSERT_NEAR(rates[j], oracle[j], 1e-7 * (1.0 + oracle[j]))
          << "item " << live_ids[j] << " after step " << steps;
    ++steps;
  } while (engine.step().has_value());
  EXPECT_EQ(engine.num_live(), 0);
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, EngineFairnessTest,
                         ::testing::Range(0, 25));

/// Both engines execute identical workloads to identical completion
/// times, event counts, and (for the incremental engine) strictly fewer
/// full progressive-filling passes once the workload has any parallelism.
class EngineEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineEquivalenceTest, IncrementalMatchesRescan) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 11);
  const RandomWorkload w = random_workload(rng);
  SimEngine incremental(w.capacities, EngineKind::Incremental);
  SimEngine rescan(w.capacities, EngineKind::Rescan);
  const PeriodStats a = incremental.run_period(w.items);
  const PeriodStats b = rescan.run_period(w.items);
  EXPECT_NEAR(a.duration, b.duration, 1e-6 * (1.0 + b.duration));
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(b.partial_solves, 0);
  EXPECT_LE(a.full_solves, b.full_solves);
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, EngineEquivalenceTest,
                         ::testing::Range(0, 25));

platform::Platform random_pipeline_platform(Rng& rng) {
  platform::GeneratorParams params;
  params.num_clusters = static_cast<int>(rng.uniform_int(3, 8));
  params.connectivity = rng.uniform(0.3, 0.8);
  params.heterogeneity = rng.uniform(0.0, 0.6);
  params.mean_gateway_bw = rng.uniform(50.0, 250.0);
  params.mean_backbone_bw = rng.uniform(5.0, 30.0);
  params.mean_max_connections = rng.uniform(2.0, 10.0);
  return generate_platform(params, rng);
}

/// End-to-end equivalence on the real pipeline: simulate_schedule under
/// both engines must agree on throughput and overrun for every policy.
class PipelineEngineTest : public ::testing::TestWithParam<int> {};

TEST_P(PipelineEngineTest, SimulateScheduleAgreesAcrossEngines) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 193 + 29);
  const auto plat = random_pipeline_platform(rng);
  std::vector<double> payoffs(plat.num_clusters(), 1.0);
  SteadyStateProblem problem(plat, payoffs, Objective::Sum);
  const auto h = core::run_lprg(problem);
  ASSERT_EQ(h.status, lp::SolveStatus::Optimal);
  const auto sched = core::build_periodic_schedule(problem, h.allocation);
  for (const SharingPolicy policy :
       {SharingPolicy::Paced, SharingPolicy::MaxMin, SharingPolicy::TcpRttBias,
        SharingPolicy::BoundedWindow}) {
    SimOptions opt;
    opt.periods = 4;
    opt.warmup_periods = 1;
    opt.policy = policy;
    SimOptions rescan = opt;
    rescan.engine = EngineKind::Rescan;
    const SimReport a = simulate_schedule(problem, sched, opt);
    const SimReport b = simulate_schedule(problem, sched, rescan);
    EXPECT_NEAR(a.worst_overrun_ratio, b.worst_overrun_ratio,
                1e-6 * (1.0 + b.worst_overrun_ratio));
    EXPECT_EQ(a.events, b.events);
    for (int k = 0; k < plat.num_clusters(); ++k)
      EXPECT_NEAR(a.throughput[k], b.throughput[k], 1e-6 * (1.0 + b.throughput[k]));
  }
}

/// Regression for the §3.2 feasibility claim under the new engine: paced
/// execution of a valid schedule with any work in it completes *exactly*
/// at the period boundary — worst_overrun_ratio == 1 within tolerance.
TEST_P(PipelineEngineTest, PacedSchedulesCompleteExactlyAtPeriodBoundary) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 331 + 5);
  const auto plat = random_pipeline_platform(rng);
  std::vector<double> payoffs(plat.num_clusters(), 1.0);
  SteadyStateProblem problem(plat, payoffs, Objective::MaxMin);
  const auto h = core::run_lprg(problem);
  ASSERT_EQ(h.status, lp::SolveStatus::Optimal);
  const auto sched = core::build_periodic_schedule(problem, h.allocation);
  if (sched.compute.empty() && sched.transfers.empty()) GTEST_SKIP();
  SimOptions opt;
  opt.periods = 3;
  opt.warmup_periods = 1;
  const SimReport report = simulate_schedule(problem, sched, opt);
  EXPECT_NEAR(report.worst_overrun_ratio, 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomPlatforms, PipelineEngineTest,
                         ::testing::Range(0, 12));

platform::Platform two_clusters() {
  platform::Platform p;
  const auto r0 = p.add_router();
  const auto r1 = p.add_router();
  p.add_cluster(100, 50, r0);
  p.add_cluster(100, 60, r1);
  p.add_backbone(r0, r1, 10, 4);
  p.compute_shortest_path_routes();
  return p;
}

/// Regression: a schedule that opens more connections over a backbone
/// link than max-connect admits must not simulate as feasible. Every
/// connection on the oversubscribed link is degraded proportionally
/// (4 admitted / 6 opened), shrinking the flow's allowance from
/// beta*pbw = 60 to bw*max_connections = 40 — so 45 units overrun by
/// exactly 45/40 where the unenforced simulator ran them on time.
TEST(Simulator, OversubscribedMaxConnectionsOverruns) {
  const auto plat = two_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  core::PeriodicSchedule sched;
  sched.period = 1;
  // 45 units over 6 connections: within beta*pbw = 60 and both gateways
  // (50/60), but the link admits only 4 connections — (7d) is the sole
  // violated constraint.
  sched.transfers.push_back({0, 1, 45, 6});
  sched.compute.push_back({0, 1, 45});

  const auto validation = core::validate_schedule(problem, sched);
  EXPECT_FALSE(validation.ok);  // (7d) catches it analytically

  SimOptions opt;
  opt.periods = 2;
  opt.warmup_periods = 0;
  const SimReport report = simulate_schedule(problem, sched, opt);
  EXPECT_NEAR(report.worst_overrun_ratio, 45.0 / 40.0, 1e-6);

  // The same traffic within budget meets its period.
  sched.transfers[0] = {0, 1, 40, 4};
  ASSERT_TRUE(core::validate_schedule(problem, sched).ok);
  const SimReport ok_report = simulate_schedule(problem, sched, opt);
  EXPECT_NEAR(ok_report.worst_overrun_ratio, 1.0, 1e-6);
}

/// The bounded-window policy plugs in through the SharingModel interface
/// and caps long-haul flows at connections * window / rtt.
TEST(Simulator, BoundedWindowThrottlesLongRttFlows) {
  platform::Platform p;
  const auto r0 = p.add_router();
  const auto r1 = p.add_router();
  p.add_cluster(100, 50, r0);
  p.add_cluster(100, 60, r1);
  p.add_backbone(r0, r1, 10, 4, "wan", 5.0);  // one-way latency 5 => rtt 10
  p.compute_shortest_path_routes();
  SteadyStateProblem problem(p, {1.0, 1.0}, Objective::Sum);
  core::PeriodicSchedule sched;
  sched.period = 1;
  sched.transfers.push_back({0, 1, 20, 2});
  sched.compute.push_back({0, 1, 20});

  SimOptions opt;
  opt.periods = 2;
  opt.warmup_periods = 0;
  opt.policy = SharingPolicy::BoundedWindow;
  opt.window_units = 5.0;  // cap = 2 * 5 / 10 = 1 unit per time
  const SimReport throttled = simulate_schedule(problem, sched, opt);
  // The 20-unit flow needs 20 time units at rate 1 => overrun 20.
  EXPECT_NEAR(throttled.worst_overrun_ratio, 20.0, 1e-6);

  opt.window_units = 1000.0;  // window no longer binds: gateway/beta govern
  const SimReport open = simulate_schedule(problem, sched, opt);
  EXPECT_NEAR(open.worst_overrun_ratio, 1.0, 1e-6);
}

/// A custom SharingModel plugs in without touching engine or simulator.
TEST(Simulator, CustomSharingModelOverride) {
  class HalfRate final : public SharingModel {
  public:
    [[nodiscard]] const char* name() const override { return "half"; }
    [[nodiscard]] ItemShaping shape(const ItemContext& ctx) const override {
      return {1.0, ctx.reserved_rate * 0.5};
    }
  };
  const auto plat = two_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  core::PeriodicSchedule sched;
  sched.period = 1;
  sched.compute.push_back({0, 0, 50});
  const HalfRate model;
  SimOptions opt;
  opt.periods = 2;
  opt.warmup_periods = 0;
  opt.model = &model;
  const SimReport report = simulate_schedule(problem, sched, opt);
  EXPECT_NEAR(report.worst_overrun_ratio, 2.0, 1e-6);
}

TEST(SimEngine, EmptyPeriodHasZeroDuration) {
  SimEngine engine({10.0});
  const PeriodStats stats = engine.run_period({});
  EXPECT_EQ(stats.duration, 0.0);
  EXPECT_EQ(stats.events, 0);
  EXPECT_EQ(stats.full_solves, 0);
}

TEST(SimEngine, ZeroSizeItemsCompleteWithoutEvents) {
  SimEngine engine({10.0});
  std::vector<EngineItem> items(3);
  for (auto& item : items) item.resources = {0};
  items[1].size = 5.0;
  const PeriodStats stats = engine.run_period(items);
  EXPECT_NEAR(stats.duration, 0.5, 1e-12);
  EXPECT_EQ(stats.events, 1);
}

TEST(SimEngine, RejectsInvalidItems) {
  SimEngine engine({10.0});
  std::vector<EngineItem> bad(1);
  bad[0].size = 1.0;  // no resources, no cap: unbounded rate
  EXPECT_THROW(engine.run_period(bad), Error);
  std::vector<EngineItem> out_of_range(1);
  out_of_range[0].size = 1.0;
  out_of_range[0].resources = {7};
  EXPECT_THROW(engine.run_period(out_of_range), Error);
  // A live item with cap 0 can never progress: clean error, not a hang.
  std::vector<EngineItem> stuck(1);
  stuck[0].size = 1.0;
  stuck[0].resources = {0};
  stuck[0].cap = 0.0;
  EXPECT_THROW(engine.run_period(stuck), Error);
}

/// Regression: a zero window must be rejected up front instead of
/// producing cap-0 flows that can never complete.
TEST(Simulator, RejectsZeroWindow) {
  const auto plat = two_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  core::PeriodicSchedule sched;
  sched.period = 1;
  sched.transfers.push_back({0, 1, 10, 2});
  SimOptions opt;
  opt.policy = SharingPolicy::BoundedWindow;
  opt.window_units = 0.0;
  EXPECT_THROW(simulate_schedule(problem, sched, opt), Error);
}

/// Periods reuse engine buffers; state never leaks between them.
TEST(SimEngine, ReusableAcrossPeriods) {
  SimEngine engine({10.0, 20.0});
  std::vector<EngineItem> items(2);
  items[0].size = 10.0;
  items[0].resources = {0};
  items[1].size = 10.0;
  items[1].resources = {1};
  for (int p = 0; p < 3; ++p) {
    const PeriodStats stats = engine.run_period(items);
    EXPECT_NEAR(stats.duration, 1.0, 1e-12);  // resource 0: 10 units at 10
    EXPECT_EQ(stats.events, 2);
  }
}

}  // namespace
}  // namespace dls::sim
