#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "core/heuristics.hpp"
#include "core/schedule.hpp"
#include "platform/generator.hpp"
#include "support/rng.hpp"

namespace dls::sim {
namespace {

using core::Objective;
using core::SteadyStateProblem;

platform::Platform single_cluster() {
  platform::Platform p;
  const auto r = p.add_router();
  p.add_cluster(100, 50, r);
  p.compute_shortest_path_routes();
  return p;
}

platform::Platform two_clusters() {
  platform::Platform p;
  const auto r0 = p.add_router();
  const auto r1 = p.add_router();
  p.add_cluster(100, 50, r0);
  p.add_cluster(100, 60, r1);
  p.add_backbone(r0, r1, 10, 4);
  p.compute_shortest_path_routes();
  return p;
}

TEST(Simulator, LocalOnlyScheduleHitsExactThroughput) {
  const auto plat = single_cluster();
  SteadyStateProblem problem(plat, {1.0}, Objective::Sum);
  core::Allocation alloc(1);
  alloc.set_alpha(0, 0, 100.0);
  const auto sched = core::build_periodic_schedule(problem, alloc);
  const auto report = simulate_schedule(problem, sched);
  EXPECT_NEAR(report.throughput[0], 100.0, 1e-6);
  EXPECT_LE(report.worst_overrun_ratio, 1.0 + 1e-9);
}

TEST(Simulator, TransferPipelineMatchesSchedule) {
  const auto plat = two_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  core::Allocation alloc(2);
  alloc.set_alpha(0, 0, 60.0);
  alloc.set_alpha(0, 1, 20.0);  // 2 connections * bw 10
  alloc.set_beta(0, 1, 2.0);
  alloc.set_alpha(1, 1, 80.0);
  ASSERT_TRUE(core::validate_allocation(problem, alloc).ok);
  const auto sched = core::build_periodic_schedule(problem, alloc);
  const auto report = simulate_schedule(problem, sched);
  EXPECT_NEAR(report.throughput[0], 80.0, 1e-6);
  EXPECT_NEAR(report.throughput[1], 80.0, 1e-6);
  EXPECT_LE(report.worst_overrun_ratio, 1.0 + 1e-9);
  EXPECT_GT(report.flows_completed, 0);
  EXPECT_GT(report.jobs_completed, 0);
}

TEST(Simulator, SaturatedLinkStillMeetsPeriod) {
  // Use all 4 connections of the backbone link, both directions.
  const auto plat = two_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  core::Allocation alloc(2);
  alloc.set_alpha(0, 1, 20.0);
  alloc.set_beta(0, 1, 2.0);
  alloc.set_alpha(1, 0, 20.0);
  alloc.set_beta(1, 0, 2.0);
  alloc.set_alpha(0, 0, 70.0);
  alloc.set_alpha(1, 1, 70.0);
  ASSERT_TRUE(core::validate_allocation(problem, alloc).ok);
  const auto sched = core::build_periodic_schedule(problem, alloc);
  const auto report = simulate_schedule(problem, sched);
  EXPECT_NEAR(report.throughput[0], 90.0, 1e-6);
  EXPECT_NEAR(report.throughput[1], 90.0, 1e-6);
  EXPECT_LE(report.worst_overrun_ratio, 1.0 + 1e-6);
}

TEST(Simulator, InfeasibleScheduleShowsOverrun) {
  // Hand-built schedule pushing 2x the cluster speed through a period.
  const auto plat = single_cluster();
  SteadyStateProblem problem(plat, {1.0}, Objective::Sum);
  core::PeriodicSchedule sched;
  sched.period = 1;
  sched.compute.push_back({0, 0, 200});  // speed is 100
  const auto report = simulate_schedule(problem, sched);
  EXPECT_GT(report.worst_overrun_ratio, 1.9);
  // Clocked throughput degrades accordingly.
  EXPECT_NEAR(report.throughput[0], 100.0, 1e-6);
}

TEST(Simulator, ZeroWorkSchedule) {
  const auto plat = single_cluster();
  SteadyStateProblem problem(plat, {1.0}, Objective::Sum);
  core::PeriodicSchedule sched;
  sched.period = 5;
  const auto report = simulate_schedule(problem, sched);
  EXPECT_EQ(report.throughput[0], 0.0);
  EXPECT_EQ(report.worst_overrun_ratio, 0.0);
}

TEST(Simulator, RejectsBadOptions) {
  const auto plat = single_cluster();
  SteadyStateProblem problem(plat, {1.0}, Objective::Sum);
  core::PeriodicSchedule sched;
  sched.period = 1;
  SimOptions opt;
  opt.periods = 0;
  EXPECT_THROW(simulate_schedule(problem, sched, opt), dls::Error);
}

// ---- period-boundary capacity revisions (ISSUE 4) --------------------------

TEST(Simulator, SpeedRevisionStretchesLaterPeriods) {
  // Local-only schedule saturating the CPU: halving the speed midway
  // must double the duration of the remaining periods.
  const auto plat = single_cluster();
  SteadyStateProblem problem(plat, {1.0}, Objective::Sum);
  core::Allocation alloc(1);
  alloc.set_alpha(0, 0, 100.0);
  const auto sched = core::build_periodic_schedule(problem, alloc);

  SimOptions opt;
  opt.warmup_periods = 0;
  opt.periods = 4;
  opt.policy = SharingPolicy::MaxMin;  // work-conserving: speed-bound
  opt.revisions.push_back(
      {2, CapacityRevision::Kind::ClusterSpeed, 0, 50.0});
  const auto degraded = simulate_schedule(problem, sched, opt);
  // Two periods at full speed (duration T), two at half (duration 2T):
  // total measured time 6T instead of 4T (clocked periods).
  SimOptions base = opt;
  base.revisions.clear();
  const auto reference = simulate_schedule(problem, sched, base);
  EXPECT_NEAR(degraded.total_time, 1.5 * reference.total_time, 1e-6);
  EXPECT_NEAR(degraded.worst_overrun_ratio, 2.0, 1e-6);
}

TEST(Simulator, LinkRevisionRepricesFlowCapsAtBoundary) {
  // Cross transfer at link bandwidth 10, 1 connection: the flow cap is
  // beta * pbw. Cutting the link to bw 2 mid-run stretches transfers.
  const auto plat = two_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  core::Allocation alloc(2);
  alloc.set_alpha(0, 0, 90.0);
  alloc.set_alpha(1, 1, 90.0);
  alloc.set_alpha(0, 1, 10.0);
  alloc.set_beta(0, 1, 1.0);
  const auto sched = core::build_periodic_schedule(problem, alloc);

  SimOptions opt;
  opt.warmup_periods = 0;
  opt.periods = 2;
  opt.policy = SharingPolicy::MaxMin;
  opt.revisions.push_back({1, CapacityRevision::Kind::LinkBw, 0, 2.0});
  const auto r = simulate_schedule(problem, sched, opt);
  // The second period's transfer runs at bw 2 instead of 10: the 10-unit
  // transfer takes 5 time units against a period of ~1.
  EXPECT_GT(r.worst_overrun_ratio, 2.0);

  // Max-connect collapse to 0 degrades via admission scaling instead of
  // deadlocking.
  SimOptions starve = opt;
  starve.revisions = {{1, CapacityRevision::Kind::LinkMaxConnect, 0, 0.0}};
  const auto starved = simulate_schedule(problem, sched, starve);
  EXPECT_GT(starved.worst_overrun_ratio, r.worst_overrun_ratio);
}

TEST(Simulator, GatewayRevisionAppliesBetweenPeriods) {
  const auto plat = two_clusters();
  SteadyStateProblem problem(plat, {1.0, 1.0}, Objective::Sum);
  core::Allocation alloc(2);
  alloc.set_alpha(0, 0, 90.0);
  alloc.set_alpha(1, 1, 90.0);
  alloc.set_alpha(0, 1, 10.0);
  alloc.set_beta(0, 1, 1.0);
  const auto sched = core::build_periodic_schedule(problem, alloc);
  SimOptions opt;
  opt.warmup_periods = 0;
  opt.periods = 3;
  opt.policy = SharingPolicy::MaxMin;
  opt.revisions.push_back({1, CapacityRevision::Kind::GatewayBw, 0, 1.0});
  const auto r = simulate_schedule(problem, sched, opt);
  EXPECT_GT(r.worst_overrun_ratio, 1.5);  // the 10-unit transfer crawls

  // Revisions must be sorted and name valid targets.
  SimOptions bad = opt;
  bad.revisions = {{2, CapacityRevision::Kind::GatewayBw, 0, 5.0},
                   {1, CapacityRevision::Kind::GatewayBw, 1, 5.0}};
  EXPECT_THROW(simulate_schedule(problem, sched, bad), dls::Error);
  bad.revisions = {{0, CapacityRevision::Kind::LinkBw, 7, 5.0}};
  EXPECT_THROW(simulate_schedule(problem, sched, bad), dls::Error);
  bad.revisions = {{0, CapacityRevision::Kind::GatewayBw, 0, -1.0}};
  EXPECT_THROW(simulate_schedule(problem, sched, bad), dls::Error);
}

/// End-to-end property: for random platforms, the full pipeline
/// (generate -> LPRG -> schedule -> simulate) under *paced* execution
/// meets the period exactly — the analytical steady-state model is
/// realizable, which is the §3.2 claim.
class PipelineRealizabilityTest : public ::testing::TestWithParam<int> {};

platform::Platform random_pipeline_platform(Rng& rng) {
  platform::GeneratorParams params;
  params.num_clusters = static_cast<int>(rng.uniform_int(3, 8));
  params.connectivity = rng.uniform(0.3, 0.8);
  params.heterogeneity = rng.uniform(0.0, 0.6);
  params.mean_gateway_bw = rng.uniform(50.0, 250.0);
  params.mean_backbone_bw = rng.uniform(5.0, 30.0);
  params.mean_max_connections = rng.uniform(2.0, 10.0);
  return generate_platform(params, rng);
}

TEST_P(PipelineRealizabilityTest, PacedLprgSchedulesExecuteOnTime) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const auto plat = random_pipeline_platform(rng);
  std::vector<double> payoffs(plat.num_clusters(), 1.0);
  for (Objective obj : {Objective::Sum, Objective::MaxMin}) {
    SteadyStateProblem problem(plat, payoffs, obj);
    const auto h = core::run_lprg(problem);
    ASSERT_EQ(h.status, lp::SolveStatus::Optimal);
    const auto sched = core::build_periodic_schedule(problem, h.allocation);
    ASSERT_TRUE(core::validate_schedule(problem, sched).ok);
    SimOptions opt;
    opt.periods = 5;
    opt.warmup_periods = 1;
    const auto report = simulate_schedule(problem, sched, opt);
    EXPECT_LE(report.worst_overrun_ratio, 1.0 + 1e-6)
        << "K=" << plat.num_clusters() << " obj=" << to_string(obj);
    for (int k = 0; k < plat.num_clusters(); ++k)
      EXPECT_NEAR(report.throughput[k], sched.throughput(k), 1e-6);
  }
}

TEST_P(PipelineRealizabilityTest, MaxMinSharingOverrunsAreBounded) {
  // Work-conserving fair sharing may overrun T_p (a beta*pbw-capped flow
  // cannot catch up after losing early fair-share rounds) but stays
  // within a modest factor; throughput never exceeds the schedule's.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  const auto plat = random_pipeline_platform(rng);
  std::vector<double> payoffs(plat.num_clusters(), 1.0);
  SteadyStateProblem problem(plat, payoffs, Objective::Sum);
  const auto h = core::run_lprg(problem);
  ASSERT_EQ(h.status, lp::SolveStatus::Optimal);
  const auto sched = core::build_periodic_schedule(problem, h.allocation);
  SimOptions opt;
  opt.periods = 5;
  opt.warmup_periods = 1;
  opt.policy = SharingPolicy::MaxMin;
  const auto report = simulate_schedule(problem, sched, opt);
  EXPECT_GE(report.worst_overrun_ratio, 0.0);
  EXPECT_LE(report.worst_overrun_ratio, 2.0);  // empirical envelope
  for (int k = 0; k < plat.num_clusters(); ++k)
    EXPECT_LE(report.throughput[k], sched.throughput(k) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomPlatforms, PipelineRealizabilityTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace dls::sim
