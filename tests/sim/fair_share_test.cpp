#include "sim/fair_share.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace dls::sim {
namespace {

constexpr double kInf = FairShareProblem::kNoCap;
constexpr double kTol = 1e-9;

FairShareProblem::Entity entity(std::vector<int> resources, double cap = kInf) {
  return {std::move(resources), cap};
}

TEST(FairShare, SingleResourceEqualSplit) {
  FairShareProblem p;
  p.capacity = {12.0};
  p.entities = {entity({0}), entity({0}), entity({0})};
  const auto rates = max_min_fair_rates(p);
  for (double r : rates) EXPECT_NEAR(r, 4.0, kTol);
  EXPECT_TRUE(is_max_min_fair(p, rates));
}

TEST(FairShare, CapLimitsOneEntityOthersShareRest) {
  FairShareProblem p;
  p.capacity = {12.0};
  p.entities = {entity({0}, 1.0), entity({0}), entity({0})};
  const auto rates = max_min_fair_rates(p);
  EXPECT_NEAR(rates[0], 1.0, kTol);
  EXPECT_NEAR(rates[1], 5.5, kTol);
  EXPECT_NEAR(rates[2], 5.5, kTol);
  EXPECT_TRUE(is_max_min_fair(p, rates));
}

TEST(FairShare, ClassicLinearNetwork) {
  // The textbook 3-link example: flow A over links 0,1,2 (caps 10, 4, 6);
  // flow B over link 1; flow C over link 2. Link 1 splits 2/2; C then
  // takes the rest of link 2.
  FairShareProblem p;
  p.capacity = {10.0, 4.0, 6.0};
  p.entities = {entity({0, 1, 2}), entity({1}), entity({2})};
  const auto rates = max_min_fair_rates(p);
  EXPECT_NEAR(rates[0], 2.0, kTol);
  EXPECT_NEAR(rates[1], 2.0, kTol);
  EXPECT_NEAR(rates[2], 4.0, kTol);
  EXPECT_TRUE(is_max_min_fair(p, rates));
}

TEST(FairShare, EntityWithOnlyACap) {
  FairShareProblem p;
  p.capacity = {};
  p.entities = {entity({}, 3.5)};
  const auto rates = max_min_fair_rates(p);
  EXPECT_NEAR(rates[0], 3.5, kTol);
}

TEST(FairShare, ZeroCapEntityGetsZero) {
  FairShareProblem p;
  p.capacity = {10.0};
  p.entities = {entity({0}, 0.0), entity({0})};
  const auto rates = max_min_fair_rates(p);
  EXPECT_NEAR(rates[0], 0.0, kTol);
  EXPECT_NEAR(rates[1], 10.0, kTol);
}

TEST(FairShare, MultiResourceEntityTakesTightest) {
  FairShareProblem p;
  p.capacity = {5.0, 100.0};
  p.entities = {entity({0, 1})};
  const auto rates = max_min_fair_rates(p);
  EXPECT_NEAR(rates[0], 5.0, kTol);
}

TEST(FairShare, EmptyProblem) {
  FairShareProblem p;
  EXPECT_TRUE(max_min_fair_rates(p).empty());
}

TEST(FairShare, RejectsInvalidInputs) {
  FairShareProblem p;
  p.capacity = {0.0};
  p.entities = {entity({0})};
  EXPECT_THROW(max_min_fair_rates(p), Error);

  FairShareProblem q;
  q.capacity = {1.0};
  q.entities = {entity({})};  // no resource, no cap: unbounded
  EXPECT_THROW(max_min_fair_rates(q), Error);

  FairShareProblem s;
  s.capacity = {1.0};
  s.entities = {entity({3})};  // dangling resource
  EXPECT_THROW(max_min_fair_rates(s), Error);
}

TEST(FairShare, GatewayPairModelsTransferBothEnds) {
  // Two flows out of the same source gateway (cap 10) into distinct sinks
  // (caps 8 and 2): the second flow is pinned at 2 by its sink, the first
  // gets the remaining 8 but is limited by its own sink to 8 as well.
  FairShareProblem p;
  p.capacity = {10.0, 8.0, 2.0};
  p.entities = {entity({0, 1}), entity({0, 2})};
  const auto rates = max_min_fair_rates(p);
  EXPECT_NEAR(rates[1], 2.0, kTol);
  EXPECT_NEAR(rates[0], 8.0, kTol);
  EXPECT_TRUE(is_max_min_fair(p, rates));
}

TEST(FairShare, RandomProblemsSatisfyBottleneckCondition) {
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    FairShareProblem p;
    const int resources = static_cast<int>(rng.uniform_int(1, 8));
    const int entities = static_cast<int>(rng.uniform_int(1, 12));
    for (int r = 0; r < resources; ++r)
      p.capacity.push_back(rng.uniform(1.0, 50.0));
    for (int e = 0; e < entities; ++e) {
      FairShareProblem::Entity ent;
      const int degree = static_cast<int>(rng.uniform_int(1, resources));
      for (int d = 0; d < degree; ++d) {
        const int r = static_cast<int>(rng.index(resources));
        if (std::find(ent.resources.begin(), ent.resources.end(), r) ==
            ent.resources.end())
          ent.resources.push_back(r);
      }
      ent.cap = rng.bernoulli(0.3) ? rng.uniform(0.1, 20.0) : kInf;
      p.entities.push_back(std::move(ent));
    }
    const auto rates = max_min_fair_rates(p);
    EXPECT_TRUE(is_max_min_fair(p, rates, 1e-6)) << "trial " << trial;
  }
}

TEST(FairShare, OracleRejectsNonFairAllocations) {
  FairShareProblem p;
  p.capacity = {12.0};
  p.entities = {entity({0}), entity({0}), entity({0})};
  // Feasible but unfair: one entity starves below the others without a cap.
  EXPECT_FALSE(is_max_min_fair(p, {1.0, 5.0, 6.0}));
  // Infeasible: oversubscribed.
  EXPECT_FALSE(is_max_min_fair(p, {8.0, 8.0, 8.0}));
  // Wrong arity.
  EXPECT_FALSE(is_max_min_fair(p, {4.0, 4.0}));
}

}  // namespace
}  // namespace dls::sim
