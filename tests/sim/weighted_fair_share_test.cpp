// Weighted max-min fair sharing and the TCP-RTT-biased simulator policy
// (paper §7 future-work extension; see DESIGN.md).
#include <gtest/gtest.h>

#include "core/schedule.hpp"
#include "sim/fair_share.hpp"
#include "sim/simulator.hpp"
#include "support/rng.hpp"

namespace dls::sim {
namespace {

constexpr double kInf = FairShareProblem::kNoCap;
constexpr double kTol = 1e-9;

FairShareProblem::Entity entity(std::vector<int> resources, double cap = kInf,
                                double weight = 1.0) {
  return {std::move(resources), cap, weight};
}

TEST(WeightedFairShare, SplitsProportionallyToWeight) {
  FairShareProblem p;
  p.capacity = {12.0};
  p.entities = {entity({0}, kInf, 1.0), entity({0}, kInf, 2.0),
                entity({0}, kInf, 3.0)};
  const auto rates = max_min_fair_rates(p);
  EXPECT_NEAR(rates[0], 2.0, kTol);
  EXPECT_NEAR(rates[1], 4.0, kTol);
  EXPECT_NEAR(rates[2], 6.0, kTol);
  EXPECT_TRUE(is_max_min_fair(p, rates));
}

TEST(WeightedFairShare, CapBeatsWeight) {
  FairShareProblem p;
  p.capacity = {12.0};
  p.entities = {entity({0}, 1.0, 10.0), entity({0}, kInf, 1.0)};
  const auto rates = max_min_fair_rates(p);
  EXPECT_NEAR(rates[0], 1.0, kTol);   // huge weight, tiny cap
  EXPECT_NEAR(rates[1], 11.0, kTol);  // picks up the slack
  EXPECT_TRUE(is_max_min_fair(p, rates));
}

TEST(WeightedFairShare, UnitWeightsReduceToPlainMaxMin) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    FairShareProblem weighted, plain;
    const int resources = static_cast<int>(rng.uniform_int(1, 5));
    const int entities = static_cast<int>(rng.uniform_int(1, 8));
    for (int r = 0; r < resources; ++r) {
      const double cap = rng.uniform(1.0, 30.0);
      weighted.capacity.push_back(cap);
      plain.capacity.push_back(cap);
    }
    for (int e = 0; e < entities; ++e) {
      FairShareProblem::Entity ent;
      ent.resources.push_back(static_cast<int>(rng.index(resources)));
      ent.cap = rng.bernoulli(0.4) ? rng.uniform(0.5, 10.0) : kInf;
      ent.weight = 1.0;
      weighted.entities.push_back(ent);
      plain.entities.push_back(ent);
    }
    EXPECT_EQ(max_min_fair_rates(weighted), max_min_fair_rates(plain));
  }
}

TEST(WeightedFairShare, RandomWeightedProblemsSatisfyOracle) {
  Rng rng(23);
  for (int trial = 0; trial < 150; ++trial) {
    FairShareProblem p;
    const int resources = static_cast<int>(rng.uniform_int(1, 6));
    const int entities = static_cast<int>(rng.uniform_int(1, 10));
    for (int r = 0; r < resources; ++r) p.capacity.push_back(rng.uniform(1.0, 40.0));
    for (int e = 0; e < entities; ++e) {
      FairShareProblem::Entity ent;
      const int degree = static_cast<int>(rng.uniform_int(1, resources));
      for (int d = 0; d < degree; ++d) {
        const int r = static_cast<int>(rng.index(resources));
        if (std::find(ent.resources.begin(), ent.resources.end(), r) ==
            ent.resources.end())
          ent.resources.push_back(r);
      }
      ent.cap = rng.bernoulli(0.3) ? rng.uniform(0.1, 15.0) : kInf;
      ent.weight = rng.uniform(0.1, 5.0);
      p.entities.push_back(std::move(ent));
    }
    const auto rates = max_min_fair_rates(p);
    EXPECT_TRUE(is_max_min_fair(p, rates, 1e-6)) << "trial " << trial;
  }
}

TEST(WeightedFairShare, RejectsNonPositiveWeight) {
  FairShareProblem p;
  p.capacity = {1.0};
  p.entities = {entity({0}, kInf, 0.0)};
  EXPECT_THROW(max_min_fair_rates(p), Error);
}

// ---- TCP-RTT-biased simulation ------------------------------------------

/// Star platform: two sources feed one sink; the near source has a
/// low-latency link, the far source a high-latency one. Gateway of the
/// sink is the contended resource.
struct RttScenario {
  platform::Platform plat;
  core::PeriodicSchedule sched;
};

RttScenario make_rtt_scenario() {
  RttScenario s;
  auto& plat = s.plat;
  const auto r_near = plat.add_router();
  const auto r_far = plat.add_router();
  const auto r_sink = plat.add_router();
  plat.add_cluster(0, 100, r_near, "near");
  plat.add_cluster(0, 100, r_far, "far");
  plat.add_cluster(300, 40, r_sink, "sink");  // gateway 40 is the bottleneck
  plat.add_backbone(r_near, r_sink, 100, 8, "short", /*latency=*/0.001);
  // The far flow's one connection caps it at 25 < gateway 40, so after
  // losing contention early it cannot catch up by using the idle gateway.
  plat.add_backbone(r_far, r_sink, 25, 8, "long", /*latency=*/0.1);
  plat.compute_shortest_path_routes();

  s.sched.period = 1;
  s.sched.transfers.push_back({0, 2, 20, 1});  // near -> sink
  s.sched.transfers.push_back({1, 2, 20, 1});  // far -> sink
  s.sched.compute.push_back({0, 2, 20});
  s.sched.compute.push_back({1, 2, 20});
  return s;
}

TEST(TcpRttBias, LongRttFlowLosesContention) {
  RttScenario s = make_rtt_scenario();
  const core::SteadyStateProblem problem(s.plat, {1.0, 1.0, 0.0},
                                         core::Objective::MaxMin);
  SimOptions fair;
  fair.policy = SharingPolicy::MaxMin;
  fair.periods = 3;
  fair.warmup_periods = 0;
  const auto fair_report = simulate_schedule(problem, s.sched, fair);

  SimOptions biased = fair;
  biased.policy = SharingPolicy::TcpRttBias;
  const auto biased_report = simulate_schedule(problem, s.sched, biased);

  // Plain max-min: both flows split the sink gateway evenly and finish
  // together. RTT bias: the near flow hogs the gateway, the far flow
  // drags past it, stretching the period.
  EXPECT_LE(fair_report.worst_overrun_ratio, biased_report.worst_overrun_ratio);
  EXPECT_GT(biased_report.worst_overrun_ratio, 1.0);
}

TEST(TcpRttBias, EqualsMaxMinOnLatencyFreePlatform) {
  RttScenario s = make_rtt_scenario();
  // Rebuild with zero latencies.
  platform::Platform flat;
  const auto r0 = flat.add_router();
  const auto r1 = flat.add_router();
  const auto r2 = flat.add_router();
  flat.add_cluster(0, 100, r0);
  flat.add_cluster(0, 100, r1);
  flat.add_cluster(300, 40, r2);
  flat.add_backbone(r0, r2, 100, 8);
  flat.add_backbone(r1, r2, 100, 8);
  flat.compute_shortest_path_routes();
  const core::SteadyStateProblem problem(flat, {1.0, 1.0, 0.0},
                                         core::Objective::MaxMin);
  SimOptions a;
  a.policy = SharingPolicy::MaxMin;
  a.periods = 2;
  a.warmup_periods = 0;
  SimOptions b = a;
  b.policy = SharingPolicy::TcpRttBias;
  const auto ra = simulate_schedule(problem, s.sched, a);
  const auto rb = simulate_schedule(problem, s.sched, b);
  EXPECT_NEAR(ra.total_time, rb.total_time, 1e-9);
  EXPECT_EQ(ra.throughput, rb.throughput);
}

}  // namespace
}  // namespace dls::sim
