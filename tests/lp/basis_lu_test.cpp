// Unit tests for the sparse Markowitz LU basis factorization: solve
// correctness against a dense reference, eta-update equivalence with
// refactorization, singularity detection, and the nnz (not m^2) memory
// claim the warm-start capsule relies on.
#include "lp/basis_lu.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace dls::lp {
namespace {

/// Dense column-major matrix with CSC extraction, plus naive O(m^3)
/// Gaussian-elimination solves as the reference oracle.
struct DenseMatrix {
  int m = 0;
  std::vector<double> a;  // column-major

  explicit DenseMatrix(int dim) : m(dim), a(static_cast<std::size_t>(dim) * dim, 0.0) {}
  double& at(int i, int j) { return a[static_cast<std::size_t>(j) * m + i]; }
  double at(int i, int j) const { return a[static_cast<std::size_t>(j) * m + i]; }

  void to_csc(std::vector<int>& col_ptr, std::vector<int>& rows,
              std::vector<double>& vals) const {
    col_ptr.assign(m + 1, 0);
    rows.clear();
    vals.clear();
    for (int j = 0; j < m; ++j) {
      for (int i = 0; i < m; ++i) {
        if (at(i, j) == 0.0) continue;
        rows.push_back(i);
        vals.push_back(at(i, j));
      }
      col_ptr[j + 1] = static_cast<int>(rows.size());
    }
  }

  /// Solves (transpose ? A' : A) x = b by elimination with partial
  /// pivoting. Returns false on a (near-)singular matrix.
  bool solve(std::vector<double> b, std::vector<double>& x, bool transpose) const {
    std::vector<double> mat(static_cast<std::size_t>(m) * m);
    for (int j = 0; j < m; ++j)
      for (int i = 0; i < m; ++i)
        mat[static_cast<std::size_t>(j) * m + i] = transpose ? at(j, i) : at(i, j);
    std::vector<int> perm(m);
    for (int i = 0; i < m; ++i) perm[i] = i;
    for (int col = 0; col < m; ++col) {
      int piv = col;
      for (int i = col + 1; i < m; ++i)
        if (std::fabs(mat[static_cast<std::size_t>(col) * m + i]) >
            std::fabs(mat[static_cast<std::size_t>(col) * m + piv]))
          piv = i;
      if (std::fabs(mat[static_cast<std::size_t>(col) * m + piv]) < 1e-12) return false;
      if (piv != col) {
        for (int j = 0; j < m; ++j)
          std::swap(mat[static_cast<std::size_t>(j) * m + piv],
                    mat[static_cast<std::size_t>(j) * m + col]);
        std::swap(b[piv], b[col]);
      }
      for (int i = col + 1; i < m; ++i) {
        const double f = mat[static_cast<std::size_t>(col) * m + i] /
                         mat[static_cast<std::size_t>(col) * m + col];
        if (f == 0.0) continue;
        for (int j = col; j < m; ++j)
          mat[static_cast<std::size_t>(j) * m + i] -=
              f * mat[static_cast<std::size_t>(j) * m + col];
        b[i] -= f * b[col];
      }
    }
    x.assign(m, 0.0);
    for (int i = m - 1; i >= 0; --i) {
      double v = b[i];
      for (int j = i + 1; j < m; ++j) v -= mat[static_cast<std::size_t>(j) * m + i] * x[j];
      x[i] = v / mat[static_cast<std::size_t>(i) * m + i];
    }
    return true;
  }
};

/// Random sparse nonsingular matrix shaped like our bases: mostly
/// singleton/doubleton columns over a nonzero diagonal.
DenseMatrix random_basis(Rng& rng, int m) {
  DenseMatrix d(m);
  for (int j = 0; j < m; ++j) {
    d.at(j, j) = rng.uniform(0.5, 3.0) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
    const int extras = rng.bernoulli(0.6) ? static_cast<int>(rng.index(3)) : 0;
    for (int e = 0; e < extras; ++e) {
      const int i = static_cast<int>(rng.index(m));
      if (i != j) d.at(i, j) = rng.uniform(-2.0, 2.0);
    }
  }
  return d;
}

bool factorize(BasisLu& lu, const DenseMatrix& d) {
  std::vector<int> col_ptr, rows;
  std::vector<double> vals;
  d.to_csc(col_ptr, rows, vals);
  return lu.factorize(d.m, col_ptr, rows, vals);
}

TEST(BasisLu, FtranBtranMatchDenseReference) {
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const int m = 2 + static_cast<int>(rng.index(40));
    const DenseMatrix d = random_basis(rng, m);
    BasisLu lu;
    ASSERT_TRUE(factorize(lu, d)) << "trial " << trial;
    EXPECT_EQ(lu.dimension(), m);

    std::vector<double> b(m), ref;
    for (double& v : b) v = rng.uniform(-5.0, 5.0);
    ASSERT_TRUE(d.solve(b, ref, /*transpose=*/false));
    std::vector<double> x = b;
    lu.ftran(x);
    for (int i = 0; i < m; ++i)
      EXPECT_NEAR(x[i], ref[i], 1e-8) << "ftran trial " << trial << " i=" << i;

    std::vector<double> c(m), tref;
    for (double& v : c) v = rng.uniform(-5.0, 5.0);
    ASSERT_TRUE(d.solve(c, tref, /*transpose=*/true));
    std::vector<double> y = c;
    lu.btran(y);
    for (int i = 0; i < m; ++i)
      EXPECT_NEAR(y[i], tref[i], 1e-8) << "btran trial " << trial << " i=" << i;
  }
}

TEST(BasisLu, EtaUpdatesMatchRefactorization) {
  // Replace basis columns one at a time; after each product-form update
  // the solves must agree with a from-scratch factorization of the
  // updated matrix.
  Rng rng(202);
  for (int trial = 0; trial < 20; ++trial) {
    const int m = 4 + static_cast<int>(rng.index(20));
    DenseMatrix d = random_basis(rng, m);
    BasisLu lu;
    ASSERT_TRUE(factorize(lu, d));

    for (int step = 0; step < 6; ++step) {
      // New column: sparse with a solid entry on the replaced slot's row
      // region so the updated basis stays comfortably nonsingular.
      const int r = static_cast<int>(rng.index(m));
      std::vector<double> col(m, 0.0);
      col[r] = rng.uniform(1.0, 3.0);
      const int extra = static_cast<int>(rng.index(m));
      if (extra != r && rng.bernoulli(0.7)) col[extra] = rng.uniform(-1.0, 1.0);

      // FTRAN the entering column, then eta-update slot r with it.
      std::vector<double> w = col;
      lu.ftran(w);
      if (std::fabs(w[r]) <= 1e-9) continue;  // would pivot on noise; skip
      ASSERT_TRUE(lu.update(r, w, 1e-9));
      for (int i = 0; i < m; ++i) d.at(i, r) = col[i];

      std::vector<double> b(m), ref;
      for (double& v : b) v = rng.uniform(-3.0, 3.0);
      ASSERT_TRUE(d.solve(b, ref, /*transpose=*/false));
      std::vector<double> x = b;
      lu.ftran(x);
      for (int i = 0; i < m; ++i)
        EXPECT_NEAR(x[i], ref[i], 1e-6)
            << "trial " << trial << " step " << step << " i=" << i;

      std::vector<double> c(m), tref;
      for (double& v : c) v = rng.uniform(-3.0, 3.0);
      ASSERT_TRUE(d.solve(c, tref, /*transpose=*/true));
      std::vector<double> y = c;
      lu.btran(y);
      for (int i = 0; i < m; ++i)
        EXPECT_NEAR(y[i], tref[i], 1e-6)
            << "trial " << trial << " step " << step << " i=" << i;
    }
    EXPECT_GT(lu.eta_count(), 0);
  }
}

TEST(BasisLu, RejectsSingularMatrices) {
  // Structurally singular: an empty column.
  {
    DenseMatrix d(4);
    d.at(0, 0) = 1.0;
    d.at(1, 1) = 1.0;
    d.at(2, 2) = 1.0;  // column 3 empty
    BasisLu lu;
    EXPECT_FALSE(factorize(lu, d));
    EXPECT_FALSE(lu.valid());
  }
  // Numerically singular: two identical columns.
  {
    DenseMatrix d(3);
    d.at(0, 0) = 1.0;
    d.at(1, 0) = 2.0;
    d.at(0, 1) = 1.0;
    d.at(1, 1) = 2.0;
    d.at(2, 2) = 1.0;
    BasisLu lu;
    EXPECT_FALSE(factorize(lu, d));
  }
}

TEST(BasisLu, UpdateRejectsTinyPivots) {
  DenseMatrix d(3);
  for (int i = 0; i < 3; ++i) d.at(i, i) = 1.0;
  BasisLu lu;
  ASSERT_TRUE(factorize(lu, d));
  std::vector<double> w = {1.0, 1e-12, 0.0};
  EXPECT_FALSE(lu.update(1, w, 1e-9));  // |w[1]| below pivot tolerance
  EXPECT_EQ(lu.eta_count(), 0);         // rejected update left no eta
  EXPECT_TRUE(lu.update(0, w, 1e-9));
  EXPECT_EQ(lu.eta_count(), 1);
}

/// Builds a sparse right-hand side with ~nnz random entries that
/// satisfies the SparseVector invariant.
SparseVector random_rhs(Rng& rng, int m, int nnz) {
  SparseVector v;
  v.reset(m);
  for (int k = 0; k < nnz; ++k) {
    const int i = static_cast<int>(rng.index(m));
    if (v.values[i] != 0.0) continue;
    double val = rng.uniform(-4.0, 4.0);
    if (val == 0.0) val = 1.0;
    v.values[i] = val;
    v.pattern.push_back(i);
  }
  return v;
}

/// The hypersparse contract against a dense oracle result: every
/// nonzero bitwise identical, every off-pattern slot an exact +0.0,
/// and the pattern exactly the ascending nonzero support.
void expect_hypersparse_matches(const SparseVector& s,
                                const std::vector<double>& dense,
                                const char* what, int trial) {
  const int m = static_cast<int>(dense.size());
  std::vector<int> expected;
  for (int i = 0; i < m; ++i) {
    if (dense[i] != 0.0) {
      expected.push_back(i);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(s.values[i]),
                std::bit_cast<std::uint64_t>(dense[i]))
          << what << " trial " << trial << " i=" << i;
    } else {
      EXPECT_EQ(s.values[i], 0.0) << what << " trial " << trial << " i=" << i;
      EXPECT_FALSE(std::signbit(s.values[i]))
          << what << " trial " << trial << " i=" << i;
    }
  }
  EXPECT_EQ(s.pattern, expected) << what << " trial " << trial;
}

TEST(BasisLu, HypersparseSolvesMatchDenseBitwise) {
  // Fuzz the reach-set FTRAN/BTRAN against the dense sweeps they must
  // reproduce exactly: random bases, long eta chains (including pivots
  // barely above the tolerance), random sparse right-hand sides.
  Rng rng(404);
  for (int trial = 0; trial < 60; ++trial) {
    const int m = 3 + static_cast<int>(rng.index(50));
    DenseMatrix d = random_basis(rng, m);
    BasisLu lu;
    ASSERT_TRUE(factorize(lu, d)) << "trial " << trial;

    // Grow an eta chain; a few updates use a deliberately tiny (but
    // accepted) pivot to exercise near-singular eta arithmetic.
    const int chain = static_cast<int>(rng.index(12));
    for (int step = 0; step < chain; ++step) {
      const int r = static_cast<int>(rng.index(m));
      std::vector<double> col(m, 0.0);
      col[r] = rng.bernoulli(0.15) ? 5e-7 : rng.uniform(1.0, 3.0);
      const int extra = static_cast<int>(rng.index(m));
      if (extra != r && rng.bernoulli(0.7)) col[extra] = rng.uniform(-1.0, 1.0);
      std::vector<double> w = col;
      lu.ftran(w);
      if (std::fabs(w[r]) <= 1e-9) continue;
      ASSERT_TRUE(lu.update(r, w, 1e-9));
    }

    SolveScratch ws;
    ws.ensure(m);
    const int nnz = 1 + static_cast<int>(rng.index(4));

    // FTRAN: hypersparse (never falling back) against the dense pass.
    {
      SparseVector x = random_rhs(rng, m, nnz);
      std::vector<double> dense = x.values;
      lu.ftran(dense);
      const BasisLu::SolveStats st = lu.ftran_sparse(x, ws, 1.0);
      EXPECT_FALSE(st.fallback) << "trial " << trial;
      EXPECT_GT(st.reach, 0) << "trial " << trial;
      expect_hypersparse_matches(x, dense, "ftran", trial);
    }
    // BTRAN, same contract.
    {
      SparseVector y = random_rhs(rng, m, nnz);
      std::vector<double> dense = y.values;
      lu.btran(dense);
      const BasisLu::SolveStats st = lu.btran_sparse(y, ws, 1.0);
      EXPECT_FALSE(st.fallback) << "trial " << trial;
      expect_hypersparse_matches(y, dense, "btran", trial);
    }
    // Unit BTRAN against the legacy scan-collected row of B^{-1}.
    {
      const int slot = static_cast<int>(rng.index(m));
      std::vector<double> ref;
      lu.btran_unit(slot, ref);
      SparseVector y;
      y.reset(m);
      const BasisLu::SolveStats st = lu.btran_unit_sparse(slot, y, ws, 1.0);
      EXPECT_FALSE(st.fallback) << "trial " << trial;
      expect_hypersparse_matches(y, ref, "btran_unit", trial);
    }
  }
}

TEST(BasisLu, CrossoverZeroForcesDenseFallback) {
  // crossover = 0.0 makes the density limit (int)(0.0 * m) = 0, so the
  // very first symbolic step crosses it: every solve must report a
  // fallback and still return the exact dense result and pattern.
  Rng rng(505);
  for (int trial = 0; trial < 20; ++trial) {
    const int m = 3 + static_cast<int>(rng.index(30));
    const DenseMatrix d = random_basis(rng, m);
    BasisLu lu;
    ASSERT_TRUE(factorize(lu, d));
    SolveScratch ws;
    ws.ensure(m);

    SparseVector x = random_rhs(rng, m, 2);
    std::vector<double> dense = x.values;
    lu.ftran(dense);
    const BasisLu::SolveStats fst = lu.ftran_sparse(x, ws, 0.0);
    EXPECT_TRUE(fst.fallback) << "trial " << trial;
    expect_hypersparse_matches(x, dense, "ftran fallback", trial);

    SparseVector y = random_rhs(rng, m, 2);
    std::vector<double> bdense = y.values;
    lu.btran(bdense);
    const BasisLu::SolveStats bst = lu.btran_sparse(y, ws, 0.0);
    EXPECT_TRUE(bst.fallback) << "trial " << trial;
    expect_hypersparse_matches(y, bdense, "btran fallback", trial);

    const int slot = static_cast<int>(rng.index(m));
    std::vector<double> ref;
    lu.btran_unit(slot, ref);
    SparseVector u;
    u.reset(m);
    const BasisLu::SolveStats ust = lu.btran_unit_sparse(slot, u, ws, 0.0);
    EXPECT_TRUE(ust.fallback) << "trial " << trial;
    expect_hypersparse_matches(u, ref, "btran_unit fallback", trial);
  }
}

TEST(BasisLu, MemoryScalesWithNnzNotDimensionSquared) {
  // A banded basis of bandwidth ~3: nnz is O(m), so the factorization
  // must stay far below the 8*m^2 bytes a dense inverse would need.
  const int m = 400;
  DenseMatrix d(m);
  Rng rng(303);
  for (int j = 0; j < m; ++j) {
    d.at(j, j) = rng.uniform(1.0, 2.0);
    if (j + 1 < m) d.at(j + 1, j) = rng.uniform(-0.5, 0.5);
    if (j >= 1) d.at(j - 1, j) = rng.uniform(-0.5, 0.5);
  }
  BasisLu lu;
  ASSERT_TRUE(factorize(lu, d));
  const std::size_t dense_bytes = static_cast<std::size_t>(m) * m * sizeof(double);
  EXPECT_LT(lu.memory_bytes(), dense_bytes / 10);
}

}  // namespace
}  // namespace dls::lp
