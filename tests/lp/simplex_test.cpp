// Deterministic simplex correctness tests on textbook and corner-case LPs.
#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/model.hpp"

namespace dls::lp {
namespace {

constexpr double kTol = 1e-6;

TEST(Simplex, TextbookMaximize) {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
  // Optimum (2, 6) -> 36 (Dantzig's classic).
  Model m;
  const int x = m.add_variable(0, kInf, 3.0, "x");
  const int y = m.add_variable(0, kInf, 5.0, "y");
  m.set_sense(Sense::Maximize);
  m.add_constraint({{x, 1.0}}, Relation::LessEqual, 4.0);
  m.add_constraint({{y, 2.0}}, Relation::LessEqual, 12.0);
  m.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::LessEqual, 18.0);

  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 36.0, kTol);
  EXPECT_NEAR(s.x[x], 2.0, kTol);
  EXPECT_NEAR(s.x[y], 6.0, kTol);
}

TEST(Simplex, TextbookMinimizeWithGreaterEqual) {
  // min 0.12x + 0.15y s.t. 60x + 60y >= 300, 12x + 6y >= 36, 10x + 30y >= 90.
  // Optimum (3, 2) -> 0.66 (diet problem).
  Model m;
  const int x = m.add_variable(0, kInf, 0.12);
  const int y = m.add_variable(0, kInf, 0.15);
  m.add_constraint({{x, 60.0}, {y, 60.0}}, Relation::GreaterEqual, 300.0);
  m.add_constraint({{x, 12.0}, {y, 6.0}}, Relation::GreaterEqual, 36.0);
  m.add_constraint({{x, 10.0}, {y, 30.0}}, Relation::GreaterEqual, 90.0);

  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 0.66, kTol);
  EXPECT_NEAR(s.x[x], 3.0, kTol);
  EXPECT_NEAR(s.x[y], 2.0, kTol);
  EXPECT_GT(s.phase1_iterations, 0);  // >= rows force a phase-1 start
}

TEST(Simplex, EqualityConstraints) {
  // max x + 2y s.t. x + y = 10, x - y = 2 -> unique point (6, 4), obj 14.
  Model m;
  const int x = m.add_variable(0, kInf, 1.0);
  const int y = m.add_variable(0, kInf, 2.0);
  m.set_sense(Sense::Maximize);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 10.0);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::Equal, 2.0);

  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.x[x], 6.0, kTol);
  EXPECT_NEAR(s.x[y], 4.0, kTol);
  EXPECT_NEAR(s.objective, 14.0, kTol);
}

TEST(Simplex, BoundedVariablesBoundFlips) {
  // max x + y with 1 <= x <= 3, 0 <= y <= 2, x + y <= 4. Optimum 4 along
  // the x+y=4 edge; both variable bounds participate.
  Model m;
  const int x = m.add_variable(1, 3, 1.0);
  const int y = m.add_variable(0, 2, 1.0);
  m.set_sense(Sense::Maximize);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEqual, 4.0);

  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 4.0, kTol);
}

TEST(Simplex, NegativeLowerBounds) {
  // min x + y with x >= -5, y >= -3, x + y >= -6 -> optimum -6.
  Model m;
  const int x = m.add_variable(-5, kInf, 1.0);
  const int y = m.add_variable(-3, kInf, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::GreaterEqual, -6.0);

  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -6.0, kTol);
}

TEST(Simplex, FreeVariable) {
  // min y s.t. y >= x - 2, y >= -x (x free) -> min at x = 1, y = -1.
  Model m;
  const int x = m.add_variable(-kInf, kInf, 0.0);
  const int y = m.add_variable(-kInf, kInf, 1.0);
  m.add_constraint({{y, 1.0}, {x, -1.0}}, Relation::GreaterEqual, -2.0);
  m.add_constraint({{y, 1.0}, {x, 1.0}}, Relation::GreaterEqual, 0.0);

  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -1.0, kTol);
  EXPECT_NEAR(s.x[x], 1.0, kTol);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const int x = m.add_variable(0, kInf, 1.0);
  m.add_constraint({{x, 1.0}}, Relation::LessEqual, 1.0);
  m.add_constraint({{x, 1.0}}, Relation::GreaterEqual, 2.0);
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::Infeasible);
}

TEST(Simplex, DetectsInfeasibleEqualities) {
  Model m;
  const int x = m.add_variable(0, kInf, 0.0);
  const int y = m.add_variable(0, kInf, 0.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 2.0);
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  const int x = m.add_variable(0, kInf, 1.0);
  const int y = m.add_variable(0, kInf, 1.0);
  m.set_sense(Sense::Maximize);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::LessEqual, 1.0);
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::Unbounded);
}

TEST(Simplex, UnconstrainedModel) {
  Model m;
  const int x = m.add_variable(-1, 5, 2.0);
  const int y = m.add_variable(-2, 3, -1.0);
  m.set_sense(Sense::Maximize);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.x[x], 5.0, kTol);
  EXPECT_NEAR(s.x[y], -2.0, kTol);
  EXPECT_NEAR(s.objective, 12.0, kTol);
}

TEST(Simplex, UnconstrainedUnbounded) {
  Model m;
  m.add_variable(0, kInf, 1.0);
  m.set_sense(Sense::Maximize);
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::Unbounded);
}

TEST(Simplex, FixedVariables) {
  // Fixed variable participates in rows but never pivots.
  Model m;
  const int x = m.add_variable(2, 2, 1.0);
  const int y = m.add_variable(0, kInf, 1.0);
  m.set_sense(Sense::Maximize);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEqual, 5.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.x[x], 2.0, kTol);
  EXPECT_NEAR(s.x[y], 3.0, kTol);
}

TEST(Simplex, BealeCyclingExample) {
  // Beale's classical cycling instance; must terminate via anti-cycling.
  // min -0.75w + 150x - 0.02y + 6z
  // s.t. 0.25w - 60x - 0.04y + 9z <= 0
  //      0.5w  - 90x - 0.02y + 3z <= 0
  //      y <= 1;  all vars >= 0.  Optimum -0.05 at y = 1, w = 0.05/0....
  Model m;
  const int w = m.add_variable(0, kInf, -0.75);
  const int x = m.add_variable(0, kInf, 150.0);
  const int y = m.add_variable(0, kInf, -0.02);
  const int z = m.add_variable(0, kInf, 6.0);
  m.add_constraint({{w, 0.25}, {x, -60.0}, {y, -0.04}, {z, 9.0}}, Relation::LessEqual, 0.0);
  m.add_constraint({{w, 0.5}, {x, -90.0}, {y, -0.02}, {z, 3.0}}, Relation::LessEqual, 0.0);
  m.add_constraint({{y, 1.0}}, Relation::LessEqual, 1.0);

  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, -0.05, kTol);
}

TEST(Simplex, DegenerateKleeMintyLike) {
  // Klee-Minty cube in 5 dims: worst case for Dantzig pricing but must
  // still terminate at 2^5-ish objective.
  const int n = 5;
  Model m;
  std::vector<int> vars(n);
  for (int j = 0; j < n; ++j)
    vars[j] = m.add_variable(0, kInf, std::pow(2.0, n - 1 - j));
  m.set_sense(Sense::Maximize);
  for (int i = 0; i < n; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < i; ++j) terms.push_back({vars[j], std::pow(2.0, i - j + 1)});
    terms.push_back({vars[i], 1.0});
    m.add_constraint(terms, Relation::LessEqual, std::pow(5.0, i + 1));
  }
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, std::pow(5.0, n), 1e-4);
}

TEST(Simplex, DualsShadowPricesMaximize) {
  // max 3x + 5y (first test): duals are (0, 1.5, 1).
  Model m;
  const int x = m.add_variable(0, kInf, 3.0);
  const int y = m.add_variable(0, kInf, 5.0);
  m.set_sense(Sense::Maximize);
  m.add_constraint({{x, 1.0}}, Relation::LessEqual, 4.0);
  m.add_constraint({{y, 2.0}}, Relation::LessEqual, 12.0);
  m.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::LessEqual, 18.0);

  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  ASSERT_EQ(s.duals.size(), 3u);
  EXPECT_NEAR(s.duals[0], 0.0, kTol);
  EXPECT_NEAR(s.duals[1], 1.5, kTol);
  EXPECT_NEAR(s.duals[2], 1.0, kTol);
}

TEST(Simplex, ObjectiveConstantCarriesThrough) {
  Model m;
  const int x = m.add_variable(0, 1, 1.0);
  m.set_sense(Sense::Maximize);
  m.set_objective_constant(10.0);
  m.add_constraint({{x, 1.0}}, Relation::LessEqual, 1.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 11.0, kTol);
}

TEST(Simplex, RedundantRowsAreHarmless) {
  Model m;
  const int x = m.add_variable(0, kInf, 1.0);
  m.set_sense(Sense::Maximize);
  for (int i = 0; i < 5; ++i) m.add_constraint({{x, 1.0}}, Relation::LessEqual, 7.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 7.0, kTol);
}

TEST(Simplex, ZeroRhsEqualityStart) {
  // Equality rows with rhs 0 are feasible at the zero start: no phase 1.
  Model m;
  const int x = m.add_variable(0, kInf, 1.0);
  const int y = m.add_variable(0, kInf, -1.0);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, Relation::Equal, 0.0);
  m.add_constraint({{x, 1.0}}, Relation::LessEqual, 3.0);
  m.set_sense(Sense::Maximize);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_EQ(s.phase1_iterations, 0);
  EXPECT_NEAR(s.objective, 0.0, kTol);
}

}  // namespace
}  // namespace dls::lp
