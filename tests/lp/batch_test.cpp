// BatchSolver determinism and shared-analysis tests (ISSUE 6).
//
// The batch layer is pure plumbing: per-thread arenas plus one shared
// column-structure cache. Its contract is that results are *bitwise*
// identical to fresh-solver sequential solves for any job count — these
// tests enforce exact equality, not tolerance-based closeness.
#include "lp/batch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/problem.hpp"
#include "exp/experiment.hpp"
#include "lp/simplex.hpp"
#include "platform/generator.hpp"
#include "support/rng.hpp"

namespace dls::lp {
namespace {

/// Payoff-re-priced variants of one steady-state reduced model: same
/// constraint matrix (and thus one shared column structure), different
/// objective coefficients — the campaign-cell workload shape.
std::vector<Model> make_variants(int k, int count, std::uint64_t seed) {
  platform::GeneratorParams params;
  params.num_clusters = k;
  params.connectivity = std::min(0.4, 8.0 / k);
  params.ensure_connected = true;
  Rng rng(seed);
  const platform::Platform plat = generate_platform(params, rng);
  std::vector<Model> out;
  for (int v = 0; v < count; ++v) {
    std::vector<double> payoffs(static_cast<std::size_t>(k), 0.0);
    for (int c = 0; c < k; c += 2)
      payoffs[static_cast<std::size_t>(c)] =
          1.0 + 0.07 * static_cast<double>((v + c) % 7);
    const core::SteadyStateProblem problem(plat, payoffs, core::Objective::Sum);
    out.push_back(problem.build_reduced().model);
  }
  return out;
}

TEST(BatchSolver, BitIdenticalToSequentialForAnyJobCount) {
  const std::vector<Model> models = make_variants(20, 12, 808);

  std::vector<Solution> plain;
  for (const Model& m : models) plain.push_back(SimplexSolver().solve(m));
  for (const Solution& s : plain) ASSERT_EQ(s.status, SolveStatus::Optimal);

  for (const int jobs : {1, 2, 4}) {
    BatchSolver batch({}, jobs);
    const std::vector<Solution> got = batch.solve_all(std::span(models));
    ASSERT_EQ(got.size(), plain.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].status, SolveStatus::Optimal);
      EXPECT_EQ(got[i].objective, plain[i].objective) << "jobs " << jobs;
      EXPECT_EQ(got[i].iterations, plain[i].iterations) << "jobs " << jobs;
      EXPECT_EQ(got[i].x, plain[i].x) << "jobs " << jobs;
      EXPECT_EQ(got[i].duals, plain[i].duals) << "jobs " << jobs;
    }
  }
}

TEST(BatchSolver, SharedStructureBuiltOncePerMatrix) {
  const std::vector<Model> models = make_variants(20, 8, 4711);
  BatchSolver batch({}, /*jobs=*/1);
  const std::vector<Solution> got = batch.solve_all(std::span(models));
  for (const Solution& s : got) ASSERT_EQ(s.status, SolveStatus::Optimal);

  // All 8 variants share one constraint matrix: exactly one column
  // structure is ever built, and later solves reuse it (first via the
  // arena-local shortcut, hence hits can be 0 with a single worker).
  const BatchSolver::Stats stats = batch.stats();
  EXPECT_EQ(stats.solves, 8u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.arenas, 1u);
  EXPECT_TRUE(got.back().column_cache_hit);
  EXPECT_FALSE(got.front().column_cache_hit);
}

TEST(BatchSolver, WarmCapsuleWorksThroughBatch) {
  const std::vector<Model> models = make_variants(16, 2, 12);
  BatchSolver batch;
  WarmState state;
  const Solution cold = batch.solve(models[0], &state);
  ASSERT_EQ(cold.status, SolveStatus::Optimal);
  EXPECT_FALSE(cold.warm_used);
  const Solution warm = batch.solve(models[1], &state);
  ASSERT_EQ(warm.status, SolveStatus::Optimal);
  EXPECT_TRUE(warm.warm_used);
  // Warm and cold agree on the optimum, though possibly via different
  // vertices on a degenerate face — so near, not bitwise.
  const Solution cold_ref = SimplexSolver().solve(models[1]);
  EXPECT_NEAR(warm.objective, cold_ref.objective,
              1e-9 * std::max(1.0, std::abs(cold_ref.objective)));
}

TEST(BatchSolver, LocalArenaReuseMatchesColdSolves) {
  const std::vector<Model> models = make_variants(24, 4, 3333);
  BatchSolver batch;
  SolveArena& arena = batch.local_arena();
  const SimplexSolver solver{SimplexOptions{}};
  for (const Model& m : models) {
    const Solution via_arena = solver.solve(m, arena);
    const Solution cold = solver.solve(m);
    ASSERT_EQ(via_arena.status, SolveStatus::Optimal);
    EXPECT_EQ(via_arena.objective, cold.objective);
    EXPECT_EQ(via_arena.iterations, cold.iterations);
    EXPECT_EQ(via_arena.x, cold.x);
  }
}

TEST(BatchSolver, RunCaseThroughBatchMatchesPlainRunCase) {
  exp::CaseConfig config;
  config.params.num_clusters = 12;
  config.params.connectivity = 0.4;
  config.params.ensure_connected = true;
  config.seed = 31337;
  config.with_lprr = true;  // exercises the arena across ~K^2 solves

  const exp::CaseResult plain = exp::run_case(config);
  BatchSolver batch;
  const exp::CaseResult batched = exp::run_case(config, batch);

  ASSERT_TRUE(plain.ok);
  ASSERT_TRUE(batched.ok);
  EXPECT_EQ(plain.lp, batched.lp);
  EXPECT_EQ(plain.g, batched.g);
  EXPECT_EQ(plain.lpr, batched.lpr);
  EXPECT_EQ(plain.lprg, batched.lprg);
  EXPECT_EQ(plain.lprr, batched.lprr);
  // run_case threads the batch's *arena* through the heuristics (the
  // solves don't go through BatchSolver::solve), so the footprint to
  // check is the shared store: structures were built and one arena used.
  EXPECT_GE(batch.stats().cache_misses, 1u);
  EXPECT_EQ(batch.stats().arenas, 1u);
}

}  // namespace
}  // namespace dls::lp
