// Multi-load LP behaviour under contention (ISSUE 8): symmetric loads
// fighting over one shared link must come out exactly equal under
// MaxMin, and the warm-start capsule must carry across event-sequenced
// joint solves with bit-identical optima.
#include <gtest/gtest.h>

#include <vector>

#include "core/multi_solve.hpp"
#include "core/problem.hpp"
#include "core/test_platforms.hpp"

namespace dls::core {
namespace {

constexpr double kTol = 1e-9;

TEST(MultiLoadLp, SymmetricLoadsOnSharedLinkSplitEquallyUnderMaxMin) {
  // two_symmetric_clusters: C0/C1 speed 100, gateways 50/60, one wan
  // link bw 10 x maxcon 4. Two identical loads at C0 share C0's CPU and
  // the 40-wide shipping path to C1: total 140, maxmin = 70 each.
  const platform::Platform plat = testing::two_symmetric_clusters();
  for (const int n : {2, 4}) {
    LoadSet set;
    set.loads.assign(static_cast<std::size_t>(n), LoadSpec{});
    MultiLoadSolveOptions options;
    options.objective = MultiObjective::MaxMin;
    const MultiLoadSolution sol = solve_loads(plat, set, options);
    ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
    for (int j = 0; j < n; ++j)
      EXPECT_NEAR(sol.throughput[j], 140.0 / n, kTol) << "N=" << n;
  }
}

TEST(MultiLoadLp, AsymmetricWeightsStillEqualizeWeightedThroughput) {
  // MaxMin maximizes min_j w_j x_j, so at the optimum the *weighted*
  // throughputs tie: w0 x0 == w1 x1 with x0 + x1 == 140.
  const platform::Platform plat = testing::two_symmetric_clusters();
  LoadSet set;
  set.loads.resize(2);
  set.loads[0].weight = 2.0;
  set.loads[1].weight = 1.0;
  MultiLoadSolveOptions options;
  options.objective = MultiObjective::MaxMin;
  const MultiLoadSolution sol = solve_loads(plat, set, options);
  ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(2.0 * sol.throughput[0], 1.0 * sol.throughput[1], kTol);
  EXPECT_NEAR(sol.throughput[0] + sol.throughput[1], 140.0, kTol);
}

TEST(MultiLoadLp, WeightedSumSaturatesTheSharedCapacity) {
  const platform::Platform plat = testing::two_symmetric_clusters();
  LoadSet set;
  set.loads.resize(2);
  const MultiLoadSolution sol = solve_loads(plat, set);
  ASSERT_EQ(sol.status, lp::SolveStatus::Optimal);
  EXPECT_NEAR(sol.throughput[0] + sol.throughput[1], 140.0, kTol);
}

TEST(MultiLoadLp, WarmCapsuleCarriesAcrossWeightPatches) {
  // Event-sequenced joint solves: only objective weights move between
  // events, so the capsule must be reused (warm) from the second solve
  // on, and each warm optimum must equal a from-scratch cold solve of
  // the identical instance (same solver, same optimality; the vertex
  // may differ on degenerate optima, the value cannot).
  const platform::Platform plat = testing::two_symmetric_clusters();
  const std::vector<std::vector<double>> weights = {
      {1.0, 1.0}, {2.0, 1.0}, {0.5, 1.5}, {1.0, 3.0}};

  SteadyStateProblem problem(plat, [] {
    LoadSet set;
    set.loads.resize(2);
    return set;
  }(), Objective::Sum);

  lp::WarmState state;
  lp::SolveArena arena;
  auto reduced = problem.build_reduced();
  int warm_used = 0;
  for (const std::vector<double>& w : weights) {
    problem = problem.with_load_weights(w);
    problem.update_reduced_payoffs(reduced);
    LpWarmStart warm{&state, &arena, &reduced};
    const MultiLoadSolution hot = solve_loads(problem, {}, &warm);
    const MultiLoadSolution cold = solve_loads(problem, {});
    ASSERT_EQ(hot.status, lp::SolveStatus::Optimal);
    ASSERT_EQ(cold.status, lp::SolveStatus::Optimal);
    EXPECT_NEAR(hot.objective, cold.objective, kTol * (1.0 + cold.objective));
    warm_used += hot.warm;
  }
  EXPECT_EQ(warm_used, static_cast<int>(weights.size()) - 1);
}

}  // namespace
}  // namespace dls::core
