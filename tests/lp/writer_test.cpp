#include "lp/writer.hpp"

#include <gtest/gtest.h>

#include "lp/model.hpp"

namespace dls::lp {
namespace {

TEST(Writer, EmitsAllSections) {
  Model m;
  const int x = m.add_variable(0, kInf, 3.0, "x");
  const int y = m.add_variable(-1, 2, -1.0, "y");
  const int z = m.add_variable(0, kInf, 0.0);  // unnamed -> x2
  m.set_integer(y);
  m.set_sense(Sense::Maximize);
  m.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::LessEqual, 4.0, "cap");
  m.add_constraint({{y, 1.0}, {z, -1.0}}, Relation::Equal, 0.0);

  const std::string text = to_lp_format(m);
  EXPECT_NE(text.find("Maximize"), std::string::npos);
  EXPECT_NE(text.find("3 x"), std::string::npos);
  EXPECT_NE(text.find("cap: x + 2 y <= 4"), std::string::npos);
  EXPECT_NE(text.find("y - x2 = 0"), std::string::npos);
  EXPECT_NE(text.find("Bounds"), std::string::npos);
  EXPECT_NE(text.find("-1 <= y <= 2"), std::string::npos);
  EXPECT_NE(text.find("Generals"), std::string::npos);
  EXPECT_NE(text.find("End"), std::string::npos);
}

TEST(Writer, DefaultBoundsOmitted) {
  Model m;
  m.add_variable(0, kInf, 1.0, "a");
  m.add_constraint({{0, 1.0}}, Relation::LessEqual, 1.0);
  const std::string text = to_lp_format(m);
  // Default [0, inf) bound should not produce a Bounds line for "a".
  EXPECT_EQ(text.find("0 <= a"), std::string::npos);
}

TEST(Writer, FixedVariable) {
  Model m;
  m.add_variable(2, 2, 1.0, "f");
  const std::string text = to_lp_format(m);
  EXPECT_NE(text.find("f = 2"), std::string::npos);
}

TEST(Writer, EmptyObjective) {
  Model m;
  m.add_variable(0, 1, 0.0, "a");
  const std::string text = to_lp_format(m);
  EXPECT_NE(text.find("obj: 0"), std::string::npos);
}

}  // namespace
}  // namespace dls::lp
