// Warm-start tests: statuses-only Basis reuse and the WarmState capsule
// (factorized basis carried across solves of same-matrix models),
// including the composite bound phase 1 that repairs a restored basis
// whose basic values moved outside their bounds.
#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/model.hpp"
#include "support/rng.hpp"

namespace dls::lp {
namespace {

constexpr double kTol = 1e-6;

/// Random bounded-variable LP with <= rows and non-negative rhs (the
/// shape of every model in this repo: the cold all-slack start is
/// feasible, so warm starts must win on pivots alone).
Model random_model(Rng& rng, int vars, int rows) {
  Model m;
  m.set_sense(Sense::Maximize);
  for (int j = 0; j < vars; ++j)
    m.add_variable(0.0, rng.bernoulli(0.3) ? rng.uniform(1.0, 10.0) : kInf,
                   rng.uniform(0.0, 5.0));
  for (int c = 0; c < rows; ++c) {
    std::vector<Term> terms;
    for (int j = 0; j < vars; ++j)
      if (rng.bernoulli(0.4)) terms.push_back({j, rng.uniform(0.1, 3.0)});
    if (terms.empty()) terms.push_back({static_cast<int>(rng.index(vars)), 1.0});
    m.add_constraint(std::move(terms), Relation::LessEqual,
                     rng.uniform(5.0, 50.0));
  }
  // Box row over every variable so no cost direction is unbounded.
  std::vector<Term> box;
  for (int j = 0; j < vars; ++j) box.push_back({j, 1.0});
  m.add_constraint(std::move(box), Relation::LessEqual, rng.uniform(50.0, 100.0));
  return m;
}

TEST(SimplexWarm, SolutionCarriesOptimalBasis) {
  Rng rng(3);
  const Model m = random_model(rng, 12, 6);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  ASSERT_TRUE(s.basis.compatible(m));
  int basics = 0;
  for (const BasisStatus st : s.basis.variables) basics += st == BasisStatus::Basic;
  for (const BasisStatus st : s.basis.slacks) basics += st == BasisStatus::Basic;
  EXPECT_EQ(basics, m.num_constraints());
}

TEST(SimplexWarm, RestartFromOwnBasisTakesNoPivots) {
  Rng rng(5);
  const Model m = random_model(rng, 20, 10);
  const Solution cold = SimplexSolver().solve(m);
  ASSERT_EQ(cold.status, SolveStatus::Optimal);
  const Solution warm = SimplexSolver().solve(m, &cold.basis);
  ASSERT_EQ(warm.status, SolveStatus::Optimal);
  EXPECT_TRUE(warm.warm_used);
  EXPECT_EQ(warm.iterations, 0);
  EXPECT_NEAR(warm.objective, cold.objective, kTol);
}

TEST(SimplexWarm, PerturbedCostsReachSameOptimumWithFewerPivots) {
  Rng rng(7);
  int warm_pivots = 0, cold_pivots = 0;
  for (int trial = 0; trial < 20; ++trial) {
    Model m = random_model(rng, 24, 12);
    const Solution base = SimplexSolver().solve(m);
    ASSERT_EQ(base.status, SolveStatus::Optimal);
    // Perturb a few objective coefficients (an "arrival" changes costs).
    for (int j = 0; j < m.num_variables(); ++j)
      if (rng.bernoulli(0.2))
        m.set_objective_coef(j, rng.uniform(0.0, 5.0));
    const Solution cold = SimplexSolver().solve(m);
    const Solution warm = SimplexSolver().solve(m, &base.basis);
    ASSERT_EQ(cold.status, SolveStatus::Optimal);
    ASSERT_EQ(warm.status, SolveStatus::Optimal);
    EXPECT_TRUE(warm.warm_used);
    EXPECT_NEAR(warm.objective, cold.objective, kTol)
        << "trial " << trial << ": warm and cold optima must agree";
    warm_pivots += warm.iterations;
    cold_pivots += cold.iterations;
  }
  // A single warm solve may wander past its cold twin, but across the
  // batch the warm starts must clearly win on pivots.
  EXPECT_LT(warm_pivots * 2, cold_pivots);
}

TEST(SimplexWarm, IncompatibleBasisIsIgnored) {
  Rng rng(9);
  const Model small = random_model(rng, 6, 3);
  const Model big = random_model(rng, 20, 10);
  const Solution s = SimplexSolver().solve(small);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  const Solution t = SimplexSolver().solve(big, &s.basis);
  ASSERT_EQ(t.status, SolveStatus::Optimal);
  EXPECT_FALSE(t.warm_used);
  const Solution ref = SimplexSolver().solve(big);
  EXPECT_NEAR(t.objective, ref.objective, kTol);
}

TEST(SimplexWarm, TightenedBoundsAreRepairedNotRejected) {
  // An optimal basic variable clamped to [0,0] afterwards (an online
  // "departure") leaves the restored basis primal infeasible; the
  // composite bound phase 1 must drive it back and still reach the new
  // optimum cold solving finds.
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    Model m = random_model(rng, 24, 12);
    const Solution base = SimplexSolver().solve(m);
    ASSERT_EQ(base.status, SolveStatus::Optimal);
    // Clamp the first few positive variables to zero.
    int clamped = 0;
    for (int j = 0; j < m.num_variables() && clamped < 4; ++j) {
      if (base.x[j] > 0.5) {
        m.set_bounds(j, 0.0, 0.0);
        m.set_objective_coef(j, 0.0);
        ++clamped;
      }
    }
    ASSERT_GT(clamped, 0);
    const Solution cold = SimplexSolver().solve(m);
    const Solution warm = SimplexSolver().solve(m, &base.basis);
    ASSERT_EQ(cold.status, SolveStatus::Optimal) << "trial " << trial;
    ASSERT_EQ(warm.status, SolveStatus::Optimal) << "trial " << trial;
    EXPECT_NEAR(warm.objective, cold.objective, kTol) << "trial " << trial;
    for (int j = 0; j < m.num_variables(); ++j) {
      EXPECT_LE(warm.x[j], m.upper_bound(j) + kTol);
      EXPECT_GE(warm.x[j], m.lower_bound(j) - kTol);
    }
  }
}

TEST(SimplexWarm, CapsuleChainsAcrossBoundAndCostChanges) {
  // The WarmState capsule carries the factorized basis across a long
  // chain of arrival-like (widen bounds, raise costs) and
  // departure-like (clamp to zero) edits; every solve must match the
  // plain cold optimum.
  Rng rng(13);
  Model m = random_model(rng, 30, 15);
  // Start with half the variables "idle": fixed to zero.
  std::vector<char> active(static_cast<std::size_t>(m.num_variables()), 1);
  for (int j = 0; j < m.num_variables(); j += 2) {
    m.set_bounds(j, 0.0, 0.0);
    m.set_objective_coef(j, 0.0);
    active[static_cast<std::size_t>(j)] = 0;
  }
  const SimplexSolver solver;
  WarmState state;
  int warm_used = 0;
  for (int step = 0; step < 40; ++step) {
    const int j = static_cast<int>(rng.index(m.num_variables()));
    if (active[static_cast<std::size_t>(j)]) {
      m.set_bounds(j, 0.0, 0.0);
      m.set_objective_coef(j, 0.0);
      active[static_cast<std::size_t>(j)] = 0;
    } else {
      m.set_bounds(j, 0.0, kInf);
      m.set_objective_coef(j, rng.uniform(0.5, 5.0));
      active[static_cast<std::size_t>(j)] = 1;
    }
    const Solution warm = solver.solve(m, &state);
    const Solution cold = solver.solve(m);
    ASSERT_EQ(warm.status, SolveStatus::Optimal) << "step " << step;
    ASSERT_EQ(cold.status, SolveStatus::Optimal) << "step " << step;
    EXPECT_NEAR(warm.objective, cold.objective, kTol) << "step " << step;
    warm_used += warm.warm_used;
  }
  // The first solve is cold (empty capsule); the rest should all reuse it.
  EXPECT_GE(warm_used, 39);
}

TEST(SimplexWarm, CapsuleFromDifferentMatrixIsRejected) {
  Rng rng(17);
  const Model a = random_model(rng, 20, 10);
  Rng rng2(18);
  const Model b = random_model(rng2, 20, 10);  // same shape, different rows
  const SimplexSolver solver;
  WarmState state;
  const Solution sa = solver.solve(a, &state);
  ASSERT_EQ(sa.status, SolveStatus::Optimal);
  ASSERT_TRUE(state.valid);
  const Solution sb = solver.solve(b, &state);
  ASSERT_EQ(sb.status, SolveStatus::Optimal);
  EXPECT_FALSE(sb.warm_used);  // fingerprint mismatch forces a cold start
  const Solution ref = solver.solve(b);
  EXPECT_NEAR(sb.objective, ref.objective, kTol);
}

TEST(SimplexWarm, CorruptedCapsuleWithDuplicateBasicsFallsBackCold) {
  Rng rng(23);
  const Model m = random_model(rng, 16, 8);
  const SimplexSolver solver;
  WarmState state;
  const Solution base = solver.solve(m, &state);
  ASSERT_EQ(base.status, SolveStatus::Optimal);
  ASSERT_TRUE(state.valid);
  // Duplicate one basic entry: statuses still count m_ basics and every
  // listed entry is individually Basic, but the list is inconsistent.
  ASSERT_GE(state.basic_vars.size(), 2u);
  state.basic_vars[0] = state.basic_vars[1];
  const Solution s = solver.solve(m, &state);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_FALSE(s.warm_used);
  EXPECT_NEAR(s.objective, base.objective, kTol);
}

TEST(SimplexWarm, InvalidatedCapsuleForcesColdButRefreshes) {
  Rng rng(19);
  const Model m = random_model(rng, 16, 8);
  const SimplexSolver solver;
  WarmState state;
  (void)solver.solve(m, &state);
  ASSERT_TRUE(state.valid);
  state.invalidate();
  const Solution cold = solver.solve(m, &state);
  EXPECT_FALSE(cold.warm_used);
  EXPECT_TRUE(state.valid);  // refreshed by the solve
  const Solution warm = solver.solve(m, &state);
  EXPECT_TRUE(warm.warm_used);
  EXPECT_EQ(warm.iterations, 0);
}

// ---- LP edge cases the LU path must preserve (ISSUE 3) ---------------------

SimplexOptions with_factorization(Factorization f) {
  SimplexOptions opt;
  opt.factorization = f;
  return opt;
}

const Factorization kBothPaths[] = {Factorization::SparseLu,
                                    Factorization::DenseInverse};

TEST(SimplexLu, SingularWarmBasisIsRejectedNotCrashed) {
  // Two structurally identical columns marked basic make the warm basis
  // singular; the refactorization must fail cleanly and fall back cold.
  Model m;
  m.set_sense(Sense::Maximize);
  const int x0 = m.add_variable(0.0, 10.0, 3.0);
  const int x1 = m.add_variable(0.0, 10.0, 2.0);
  m.add_constraint({{x0, 1.0}, {x1, 1.0}}, Relation::LessEqual, 8.0);
  m.add_constraint({{x0, 2.0}, {x1, 2.0}}, Relation::LessEqual, 30.0);

  Basis singular;
  singular.variables = {BasisStatus::Basic, BasisStatus::Basic};
  singular.slacks = {BasisStatus::AtLower, BasisStatus::AtLower};

  for (const Factorization f : kBothPaths) {
    const SimplexSolver solver(with_factorization(f));
    const Solution warm = solver.solve(m, &singular);
    ASSERT_EQ(warm.status, SolveStatus::Optimal);
    EXPECT_FALSE(warm.warm_used);  // singular basis silently discarded
    const Solution cold = solver.solve(m);
    EXPECT_NEAR(warm.objective, cold.objective, kTol);
  }
}

TEST(SimplexLu, RefactorIntervalDriftRecovery) {
  // Forcing a refactorization after (nearly) every pivot and never
  // refactorizing inside a solve must both reach the default path's
  // optimum: the factorization rebuild may not disturb the iterate.
  Rng rng(29);
  for (int trial = 0; trial < 10; ++trial) {
    const Model m = random_model(rng, 24, 12);
    const Solution ref = SimplexSolver().solve(m);
    ASSERT_EQ(ref.status, SolveStatus::Optimal);
    for (const Factorization f : kBothPaths) {
      SimplexOptions eager = with_factorization(f);
      eager.refactor_interval = 1;
      SimplexOptions lazy = with_factorization(f);
      lazy.refactor_interval = 1'000'000;
      const Solution se = SimplexSolver(eager).solve(m);
      const Solution sl = SimplexSolver(lazy).solve(m);
      ASSERT_EQ(se.status, SolveStatus::Optimal) << "trial " << trial;
      ASSERT_EQ(sl.status, SolveStatus::Optimal) << "trial " << trial;
      EXPECT_NEAR(se.objective, ref.objective, kTol) << "trial " << trial;
      EXPECT_NEAR(sl.objective, ref.objective, kTol) << "trial " << trial;
    }
  }
}

TEST(SimplexLu, BlandAntiCyclingAfterStallStillReachesOptimum) {
  // stall_limit = 0 flips to Bland's rule after the first degenerate
  // pivot; on a highly degenerate model (many zero-rhs rows) both
  // factorizations must still terminate at the reference optimum.
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    Model m;
    m.set_sense(Sense::Maximize);
    const int vars = 10;
    for (int j = 0; j < vars; ++j) m.add_variable(0.0, kInf, rng.uniform(0.5, 2.0));
    for (int c = 0; c < 6; ++c) {
      std::vector<Term> terms;
      for (int j = 0; j < vars; ++j)
        if (rng.bernoulli(0.5)) terms.push_back({j, rng.uniform(0.2, 2.0)});
      if (terms.empty()) terms.push_back({0, 1.0});
      // Half the rows are degenerate (rhs 0), forcing zero-length steps.
      m.add_constraint(std::move(terms), Relation::LessEqual,
                       rng.bernoulli(0.5) ? 0.0 : rng.uniform(1.0, 10.0));
    }
    std::vector<Term> box;
    for (int j = 0; j < vars; ++j) box.push_back({j, 1.0});
    m.add_constraint(std::move(box), Relation::LessEqual, 50.0);

    const Solution ref = SimplexSolver().solve(m);
    ASSERT_EQ(ref.status, SolveStatus::Optimal);
    for (const Factorization f : kBothPaths) {
      SimplexOptions opt = with_factorization(f);
      opt.stall_limit = 0;
      const Solution s = SimplexSolver(opt).solve(m);
      ASSERT_EQ(s.status, SolveStatus::Optimal) << "trial " << trial;
      EXPECT_NEAR(s.objective, ref.objective, kTol) << "trial " << trial;
    }
  }
}

TEST(SimplexLu, WarmAndColdAgreeUnderBothFactorizations) {
  // The capsule-chain invariant re-run explicitly against the sparse LU
  // path and the dense baseline: every warm solve must match its cold
  // twin's objective, and the two factorizations must agree with each
  // other.
  for (const Factorization f : kBothPaths) {
    Rng rng(37);
    Model m = random_model(rng, 24, 12);
    const SimplexSolver solver(with_factorization(f));
    WarmState state;
    for (int step = 0; step < 15; ++step) {
      const int j = static_cast<int>(rng.index(m.num_variables()));
      if (m.upper_bound(j) == 0.0) {
        m.set_bounds(j, 0.0, kInf);
        m.set_objective_coef(j, rng.uniform(0.5, 5.0));
      } else {
        m.set_bounds(j, 0.0, 0.0);
        m.set_objective_coef(j, 0.0);
      }
      const Solution warm = solver.solve(m, &state);
      const Solution cold = solver.solve(m);
      ASSERT_EQ(warm.status, SolveStatus::Optimal) << "step " << step;
      ASSERT_EQ(cold.status, SolveStatus::Optimal) << "step " << step;
      EXPECT_NEAR(warm.objective, cold.objective, kTol) << "step " << step;
    }
  }
}

TEST(SimplexLu, SparseCapsuleShrinksBelowDenseInverse) {
  // The memory claim behind the migration: on a model shaped like ours
  // (each column touches a handful of rows) the capsule's factorization
  // footprint must scale with the basis nonzeros, far below the 8*m^2
  // bytes the dense inverse used to pin.
  Rng rng(41);
  Model m;
  m.set_sense(Sense::Maximize);
  const int rows = 120, vars = 240;
  std::vector<std::vector<Term>> row_terms(rows);
  for (int j = 0; j < vars; ++j) {
    m.add_variable(0.0, kInf, rng.uniform(0.5, 3.0));
    // Each variable appears in 2-3 rows, like an alpha column touching
    // its gateway rows plus a link row.
    const int touches = 2 + static_cast<int>(rng.index(2));
    for (int t = 0; t < touches; ++t)
      row_terms[rng.index(rows)].push_back({j, rng.uniform(0.2, 2.0)});
  }
  for (int c = 0; c < rows; ++c) {
    if (row_terms[c].empty()) row_terms[c].push_back({c % vars, 1.0});
    m.add_constraint(std::move(row_terms[c]), Relation::LessEqual,
                     rng.uniform(5.0, 50.0));
  }
  const SimplexSolver solver;
  WarmState state;
  const Solution s = solver.solve(m, &state);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  ASSERT_TRUE(state.valid);
  const std::size_t dense_bytes = static_cast<std::size_t>(m.num_constraints()) *
                                  static_cast<std::size_t>(m.num_constraints()) *
                                  sizeof(double);
  // The eta file accumulated since the last refactorization dominates a
  // fresh capsule, so the margin here is modest; it widens with m (the
  // lp_scaling bench tracks the production-size ratio).
  EXPECT_LT(state.memory_bytes(), dense_bytes / 2);

  // A tighter refactor interval compacts the eta file and shrinks the
  // capsule further.
  SimplexOptions tight;
  tight.refactor_interval = 10;
  WarmState small_state;
  const Solution s2 = SimplexSolver(tight).solve(m, &small_state);
  ASSERT_EQ(s2.status, SolveStatus::Optimal);
  ASSERT_TRUE(small_state.valid);
  EXPECT_LT(small_state.memory_bytes(), dense_bytes / 4);
  EXPECT_LE(small_state.memory_bytes(), state.memory_bytes());
}

// ---- basis repair across matrix changes (ISSUE 4) --------------------------
//
// SimplexOptions::warm_repair lets a capsule whose matrix fingerprint no
// longer matches retry as a statuses-only start against the new matrix.
// Capacity-loss events must recover to the cold optimum under both
// factorizations, whether the carried basis stays feasible, turns
// infeasible (composite bound repair), or goes singular (cold fallback).

SimplexOptions repair_options(Factorization f) {
  SimplexOptions opt;
  opt.factorization = f;
  opt.warm_repair = true;
  return opt;
}

TEST(SimplexWarmRepair, CapacityLossRepairsToColdOptimum) {
  for (const Factorization f :
       {Factorization::SparseLu, Factorization::DenseInverse}) {
    Rng rng(41);
    Model m = random_model(rng, 24, 12);
    const SimplexSolver solver(repair_options(f));
    WarmState state;
    const Solution base = solver.solve(m, &state);
    ASSERT_EQ(base.status, SolveStatus::Optimal);
    ASSERT_TRUE(state.valid);

    // Capacity loss: shrink every coefficient of row 0 (a bandwidth cut
    // re-prices alpha/pbw terms) and tighten its rhs. The matrix
    // fingerprint changes, so the capsule cannot restore whole; the
    // repair path must still reach the cold optimum.
    Model cut = m;
    std::vector<Term> row(cut.row(0).begin(), cut.row(0).end());
    for (Term& t : row) t.coef *= 2.0;  // each unit now costs double
    cut.set_row(0, std::move(row));
    cut.set_rhs(0, cut.rhs(0) * 0.6);

    const Solution warm = solver.solve(cut, &state);
    ASSERT_EQ(warm.status, SolveStatus::Optimal);
    EXPECT_TRUE(warm.warm_used);
    EXPECT_EQ(warm.warm_kind, WarmKind::Basis);
    const Solution cold = SimplexSolver(repair_options(f)).solve(cut);
    EXPECT_NEAR(warm.objective, cold.objective, kTol)
        << "factorization " << static_cast<int>(f);
    EXPECT_LE(warm.iterations, cold.iterations);
  }
}

TEST(SimplexWarmRepair, InfeasibleCarriedBasisIsRepairedByBoundPhase1) {
  for (const Factorization f :
       {Factorization::SparseLu, Factorization::DenseInverse}) {
    Rng rng(43);
    Model m = random_model(rng, 20, 10);
    const SimplexSolver solver(repair_options(f));
    WarmState state;
    const Solution base = solver.solve(m, &state);
    ASSERT_EQ(base.status, SolveStatus::Optimal);

    // Deep cut: rescale every row's coefficients so the carried basic
    // values land far outside their bounds — the statuses-only restore
    // is primal infeasible and must go through the composite repair.
    Model cut = m;
    for (int c = 0; c < cut.num_constraints(); ++c) {
      std::vector<Term> row(cut.row(c).begin(), cut.row(c).end());
      for (Term& t : row) t.coef *= (c % 2 == 0) ? 3.0 : 0.5;
      cut.set_row(c, std::move(row));
    }
    const Solution warm = solver.solve(cut, &state);
    ASSERT_EQ(warm.status, SolveStatus::Optimal);
    const Solution cold = SimplexSolver(repair_options(f)).solve(cut);
    ASSERT_EQ(cold.status, SolveStatus::Optimal);
    // Whether the repair survived or fell back cold, the optimum matches.
    EXPECT_NEAR(warm.objective, cold.objective, kTol)
        << "factorization " << static_cast<int>(f);
    if (warm.warm_used) {
      EXPECT_EQ(warm.warm_kind, WarmKind::Basis);
      EXPECT_GT(warm.phase1_iterations, 0);  // the repair actually ran
    }
  }
}

TEST(SimplexWarmRepair, SingularizedBasisFallsBackCold) {
  for (const Factorization f :
       {Factorization::SparseLu, Factorization::DenseInverse}) {
    // Two structural variables both basic at the optimum; the capacity
    // event collapses their columns to be linearly dependent, so the
    // refactorization of the carried basic set must fail cleanly.
    Model m;
    m.set_sense(Sense::Maximize);
    m.add_variable(0.0, kInf, 3.0, "x");
    m.add_variable(0.0, kInf, 2.0, "y");
    m.add_constraint({{0, 1.0}, {1, 2.0}}, Relation::LessEqual, 10.0);
    m.add_constraint({{0, 2.0}, {1, 1.0}}, Relation::LessEqual, 10.0);
    const SimplexSolver solver(repair_options(f));
    WarmState state;
    const Solution base = solver.solve(m, &state);
    ASSERT_EQ(base.status, SolveStatus::Optimal);
    ASSERT_TRUE(state.valid);
    // Both x and y are basic (optimum at the row intersection).
    ASSERT_EQ(state.basis.variables[0], BasisStatus::Basic);
    ASSERT_EQ(state.basis.variables[1], BasisStatus::Basic);

    Model cut = m;
    cut.set_row(0, {{0, 1.0}, {1, 2.0}});
    cut.set_row(1, {{0, 2.0}, {1, 4.0}});  // now a multiple of row 0
    const Solution warm = solver.solve(cut, &state);
    ASSERT_EQ(warm.status, SolveStatus::Optimal);
    EXPECT_FALSE(warm.warm_used);  // singular basis discarded, cold start
    EXPECT_EQ(warm.warm_kind, WarmKind::Cold);
    const Solution cold = SimplexSolver(repair_options(f)).solve(cut);
    EXPECT_NEAR(warm.objective, cold.objective, kTol);
  }
}

TEST(SimplexWarmRepair, OffByDefaultPreservesColdFallback) {
  Rng rng(47);
  const Model a = random_model(rng, 16, 8);
  Model b = a;
  std::vector<Term> row(b.row(0).begin(), b.row(0).end());
  for (Term& t : row) t.coef *= 1.5;
  b.set_row(0, std::move(row));
  const SimplexSolver solver;  // warm_repair off
  WarmState state;
  ASSERT_EQ(solver.solve(a, &state).status, SolveStatus::Optimal);
  const Solution s = solver.solve(b, &state);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_FALSE(s.warm_used);
  EXPECT_EQ(s.warm_kind, WarmKind::Cold);
}

}  // namespace
}  // namespace dls::lp
