// Randomized property tests for the simplex solver.
//
// Optimality is certified without a reference solver via LP duality: for
//   max c'x  s.t.  Ax <= b,  l <= x <= u,
// any y >= 0 gives the bound  c'x* <= y'b + sum_j max_{x_j in [l_j,u_j]}
// (c_j - y'A_j) x_j.  At an optimal basis the solver's own duals make this
// bound tight, so checking (a) primal feasibility and (b) bound tightness
// with the returned duals proves optimality independent of the pivot path.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "support/rng.hpp"

namespace dls::lp {
namespace {

struct RandomLp {
  Model model;
  std::vector<double> interior;  // known feasible point
};

/// Builds a random feasible maximize-LP with <= rows and box bounds:
/// picks an interior point first, then sets each rhs above its activity.
RandomLp make_random_lp(Rng& rng, int n, int m, bool boxed) {
  RandomLp out;
  std::vector<int> vars(n);
  out.interior.resize(n);
  for (int j = 0; j < n; ++j) {
    const double lo = 0.0;
    const double hi = boxed ? rng.uniform(1.0, 20.0) : kInf;
    vars[j] = out.model.add_variable(lo, hi, rng.uniform(-5.0, 5.0));
    out.interior[j] = boxed ? rng.uniform(lo, hi) : rng.uniform(0.0, 10.0);
  }
  out.model.set_sense(Sense::Maximize);
  for (int i = 0; i < m; ++i) {
    std::vector<Term> terms;
    double activity = 0.0;
    for (int j = 0; j < n; ++j) {
      if (rng.bernoulli(0.4) && terms.size() + 1 < 12) {
        const double coef = rng.uniform(-3.0, 3.0);
        terms.push_back({vars[j], coef});
        activity += coef * out.interior[j];
      }
    }
    if (terms.empty()) terms.push_back({vars[rng.index(n)], 1.0});
    double act2 = 0.0;
    for (const Term& t : terms) act2 += t.coef * out.interior[t.var];
    out.model.add_constraint(std::move(terms), Relation::LessEqual,
                             act2 + rng.uniform(0.1, 5.0));
  }
  return out;
}

/// Duality-certificate upper bound using the solver's returned duals.
double dual_bound(const Model& m, const std::vector<double>& y) {
  double bound = m.objective_constant();
  for (int c = 0; c < m.num_constraints(); ++c) bound += y[c] * m.rhs(c);
  // Reduced cost of each variable, maximized over its box.
  std::vector<double> red(m.num_variables());
  for (int j = 0; j < m.num_variables(); ++j) red[j] = m.objective_coef(j);
  for (int c = 0; c < m.num_constraints(); ++c)
    for (const Term& t : m.row(c)) red[t.var] -= y[c] * t.coef;
  for (int j = 0; j < m.num_variables(); ++j) {
    if (red[j] > 0) {
      bound += red[j] * m.upper_bound(j);  // finite by construction when boxed
    } else if (red[j] < 0) {
      bound += red[j] * m.lower_bound(j);
    }
  }
  return bound;
}

TEST(SimplexProperty, BoxedRandomLpsOptimalAndCertified) {
  Rng rng(2024);
  int solved = 0;
  for (int iter = 0; iter < 300; ++iter) {
    const int n = static_cast<int>(rng.uniform_int(1, 12));
    const int m = static_cast<int>(rng.uniform_int(1, 14));
    RandomLp lp = make_random_lp(rng, n, m, /*boxed=*/true);

    const Solution s = SimplexSolver().solve(lp.model);
    ASSERT_EQ(s.status, SolveStatus::Optimal) << "iter " << iter;
    ++solved;

    // (a) primal feasibility.
    EXPECT_TRUE(lp.model.is_feasible(s.x, 1e-6)) << "iter " << iter;
    // (b) at least as good as the known interior point.
    EXPECT_GE(s.objective, lp.model.objective_value(lp.interior) - 1e-6);
    // (c) duals are sign-correct and certify optimality.
    ASSERT_EQ(s.duals.size(), static_cast<std::size_t>(lp.model.num_constraints()));
    for (double d : s.duals) EXPECT_GE(d, -1e-6);
    const double bound = dual_bound(lp.model, s.duals);
    EXPECT_NEAR(bound, s.objective, 1e-5 * (1.0 + std::fabs(s.objective)))
        << "duality gap at iter " << iter;
  }
  EXPECT_EQ(solved, 300);
}

TEST(SimplexProperty, UnboxedRandomLpsFeasibleOrUnbounded) {
  Rng rng(777);
  int optimal = 0, unbounded = 0;
  for (int iter = 0; iter < 300; ++iter) {
    const int n = static_cast<int>(rng.uniform_int(1, 10));
    const int m = static_cast<int>(rng.uniform_int(1, 12));
    RandomLp lp = make_random_lp(rng, n, m, /*boxed=*/false);

    const Solution s = SimplexSolver().solve(lp.model);
    ASSERT_TRUE(s.status == SolveStatus::Optimal || s.status == SolveStatus::Unbounded)
        << "iter " << iter << ": " << to_string(s.status);
    if (s.status == SolveStatus::Optimal) {
      ++optimal;
      EXPECT_TRUE(lp.model.is_feasible(s.x, 1e-6)) << "iter " << iter;
      EXPECT_GE(s.objective, lp.model.objective_value(lp.interior) - 1e-6);
    } else {
      ++unbounded;
    }
  }
  // Both outcomes should occur over 300 random instances.
  EXPECT_GT(optimal, 0);
  EXPECT_GT(unbounded, 0);
}

TEST(SimplexProperty, PerturbedEqualitiesStayConsistent) {
  // Equality-constrained random LPs: x fixed on a random hyperplane bundle;
  // verifies phase 1 + phase 2 agree with feasibility.
  Rng rng(31337);
  for (int iter = 0; iter < 150; ++iter) {
    const int n = static_cast<int>(rng.uniform_int(2, 8));
    Model m;
    std::vector<double> point(n);
    std::vector<int> vars(n);
    for (int j = 0; j < n; ++j) {
      vars[j] = m.add_variable(0.0, 10.0, rng.uniform(-2.0, 2.0));
      point[j] = rng.uniform(0.0, 10.0);
    }
    m.set_sense(Sense::Maximize);
    const int rows = static_cast<int>(rng.uniform_int(1, n));
    for (int i = 0; i < rows; ++i) {
      std::vector<Term> terms;
      double act = 0.0;
      for (int j = 0; j < n; ++j) {
        const double coef = rng.uniform(-1.0, 1.0);
        terms.push_back({vars[j], coef});
        act += coef * point[j];
      }
      m.add_constraint(std::move(terms), Relation::Equal, act);
    }
    const Solution s = SimplexSolver().solve(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal) << "iter " << iter;
    EXPECT_TRUE(m.is_feasible(s.x, 1e-5)) << "iter " << iter;
    EXPECT_GE(s.objective, m.objective_value(point) - 1e-6);
  }
}

TEST(SimplexProperty, ScaleInvarianceSmoke) {
  // Scaling rows and rhs together must not change the optimum.
  Rng rng(4242);
  for (int iter = 0; iter < 50; ++iter) {
    RandomLp lp = make_random_lp(rng, 6, 8, true);
    const Solution base = SimplexSolver().solve(lp.model);
    ASSERT_EQ(base.status, SolveStatus::Optimal);

    Model scaled;
    for (int j = 0; j < lp.model.num_variables(); ++j)
      scaled.add_variable(lp.model.lower_bound(j), lp.model.upper_bound(j),
                          lp.model.objective_coef(j));
    scaled.set_sense(Sense::Maximize);
    for (int c = 0; c < lp.model.num_constraints(); ++c) {
      const double f = rng.uniform(0.5, 100.0);
      std::vector<Term> terms(lp.model.row(c).begin(), lp.model.row(c).end());
      for (Term& t : terms) t.coef *= f;
      scaled.add_constraint(std::move(terms), lp.model.relation(c),
                            lp.model.rhs(c) * f);
    }
    const Solution s2 = SimplexSolver().solve(scaled);
    ASSERT_EQ(s2.status, SolveStatus::Optimal);
    EXPECT_NEAR(base.objective, s2.objective, 1e-5 * (1.0 + std::fabs(base.objective)));
  }
}

}  // namespace
}  // namespace dls::lp
