// Stress and failure-injection tests for the simplex solver: option
// limits, degenerate geometry, ill-conditioned scaling, larger instances.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "support/rng.hpp"

namespace dls::lp {
namespace {

TEST(SimplexStress, IterationLimitReported) {
  // A transportation-style LP that needs more than 2 pivots.
  Model m;
  std::vector<int> vars;
  for (int i = 0; i < 20; ++i) vars.push_back(m.add_variable(0, kInf, 1.0));
  m.set_sense(Sense::Maximize);
  for (int i = 0; i < 19; ++i)
    m.add_constraint({{vars[i], 1.0}, {vars[i + 1], 1.0}}, Relation::LessEqual,
                     static_cast<double>(i + 1));
  SimplexOptions opt;
  opt.max_iterations = 2;
  const Solution s = SimplexSolver(opt).solve(m);
  EXPECT_EQ(s.status, SolveStatus::IterationLimit);
}

TEST(SimplexStress, TinyRefactorIntervalStillCorrect) {
  // Forcing a refactor after every pivot must not change results.
  Model m;
  const int x = m.add_variable(0, kInf, 3.0);
  const int y = m.add_variable(0, kInf, 5.0);
  m.set_sense(Sense::Maximize);
  m.add_constraint({{x, 1.0}}, Relation::LessEqual, 4.0);
  m.add_constraint({{y, 2.0}}, Relation::LessEqual, 12.0);
  m.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::LessEqual, 18.0);
  SimplexOptions opt;
  opt.refactor_interval = 1;
  const Solution s = SimplexSolver(opt).solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 36.0, 1e-6);
}

TEST(SimplexStress, HighlyDegenerateAssignmentPolytope) {
  // Assignment-problem relaxation: massively degenerate vertices; the
  // optimum is the max-weight perfect matching value.
  const int n = 6;
  Rng rng(3);
  Model m;
  std::vector<std::vector<int>> x(n, std::vector<int>(n));
  std::vector<std::vector<double>> w(n, std::vector<double>(n));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      w[i][j] = std::floor(rng.uniform(0.0, 10.0));
      x[i][j] = m.add_variable(0, 1, w[i][j]);
    }
  m.set_sense(Sense::Maximize);
  for (int i = 0; i < n; ++i) {
    std::vector<Term> row, col;
    for (int j = 0; j < n; ++j) {
      row.push_back({x[i][j], 1.0});
      col.push_back({x[j][i], 1.0});
    }
    m.add_constraint(row, Relation::Equal, 1.0);
    m.add_constraint(col, Relation::Equal, 1.0);
  }
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  // Brute-force the assignment optimum.
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  double best = 0;
  do {
    double v = 0;
    for (int i = 0; i < n; ++i) v += w[i][perm[i]];
    best = std::max(best, v);
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_NEAR(s.objective, best, 1e-6);  // LP relaxation is integral here
}

TEST(SimplexStress, BadlyScaledRows) {
  // Coefficients spanning 9 orders of magnitude.
  Model m;
  const int x = m.add_variable(0, kInf, 1.0);
  const int y = m.add_variable(0, kInf, 1e-6);
  m.set_sense(Sense::Maximize);
  m.add_constraint({{x, 1e-4}, {y, 1e5}}, Relation::LessEqual, 1e3);
  m.add_constraint({{x, 1.0}}, Relation::LessEqual, 1e6);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_TRUE(m.is_feasible(s.x, 1e-3));
  EXPECT_NEAR(s.x[x], 1e6, 1.0);
}

TEST(SimplexStress, ManyRedundantEqualities) {
  // The same hyperplane repeated: phase 1 must cope with dependent rows
  // (artificials for the duplicates stay basic at zero).
  Model m;
  const int x = m.add_variable(0, kInf, 1.0);
  const int y = m.add_variable(0, kInf, 2.0);
  m.set_sense(Sense::Maximize);
  for (int i = 0; i < 6; ++i)
    m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::Equal, 10.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 20.0, 1e-6);
}

TEST(SimplexStress, MediumRandomDenseLps) {
  // 40 x 60 dense LPs, feasibility by construction.
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    Model m;
    const int n = 60, rows = 40;
    std::vector<double> point(n);
    std::vector<int> vars(n);
    for (int j = 0; j < n; ++j) {
      vars[j] = m.add_variable(0, 50, rng.uniform(-2.0, 2.0));
      point[j] = rng.uniform(0.0, 50.0);
    }
    m.set_sense(Sense::Maximize);
    for (int i = 0; i < rows; ++i) {
      std::vector<Term> terms;
      double act = 0;
      for (int j = 0; j < n; ++j) {
        const double c = rng.uniform(-1.0, 1.0);
        terms.push_back({vars[j], c});
        act += c * point[j];
      }
      m.add_constraint(std::move(terms), Relation::LessEqual, act + rng.uniform(0, 10));
    }
    const Solution s = SimplexSolver().solve(m);
    ASSERT_EQ(s.status, SolveStatus::Optimal) << trial;
    EXPECT_TRUE(m.is_feasible(s.x, 1e-5)) << trial;
    EXPECT_GE(s.objective, m.objective_value(point) - 1e-6) << trial;
  }
}

TEST(SimplexStress, AllVariablesFixed) {
  Model m;
  const int x = m.add_variable(3, 3, 1.0);
  const int y = m.add_variable(-2, -2, 1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEqual, 5.0);
  const Solution s = SimplexSolver().solve(m);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_NEAR(s.objective, 1.0, 1e-9);
}

TEST(SimplexStress, FixedVariablesMakeRowInfeasible) {
  Model m;
  const int x = m.add_variable(3, 3, 1.0);
  m.add_constraint({{x, 1.0}}, Relation::LessEqual, 2.0);
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::Infeasible);
}

}  // namespace
}  // namespace dls::lp
