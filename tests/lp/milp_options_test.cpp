// Branch-and-bound option and behaviour coverage beyond the basic MILP
// correctness tests.
#include <gtest/gtest.h>

#include "lp/milp.hpp"
#include "lp/model.hpp"
#include "support/rng.hpp"

namespace dls::lp {
namespace {

TEST(MilpOptions, GapToleranceAcceptsNearOptimal) {
  // max y, 2y <= 9, integer: optimum 4. With a huge gap tolerance the
  // search prunes aggressively but the incumbent must stay feasible.
  Model m;
  const int y = m.add_variable(0, kInf, 1.0);
  m.set_integer(y);
  m.set_sense(Sense::Maximize);
  m.add_constraint({{y, 2.0}}, Relation::LessEqual, 9.0);
  MilpOptions opt;
  opt.gap_tol = 10.0;
  const MilpResult r = BranchAndBound(opt).solve(m);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_TRUE(m.is_feasible(r.x, 1e-6));
  EXPECT_TRUE(m.is_integer_feasible(r.x, 1e-6));
}

TEST(MilpOptions, NodeCountingIsPlausible) {
  // A pure LP (no integers) costs exactly one node; adding an integrality
  // constraint with a fractional relaxation costs at least three.
  Model lp_only;
  const int x = lp_only.add_variable(0, 2.5, 1.0);
  lp_only.set_sense(Sense::Maximize);
  lp_only.add_constraint({{x, 1.0}}, Relation::LessEqual, 9.0);
  EXPECT_EQ(BranchAndBound().solve(lp_only).nodes, 1);

  Model milp = lp_only;
  milp.set_integer(x);
  const MilpResult r = BranchAndBound().solve(milp);
  EXPECT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
  EXPECT_GE(r.nodes, 2);
}

TEST(MilpOptions, NegativeIntegerDomains) {
  // min x + y over integers in [-5, 5], x + y >= -7.3 -> optimum -7
  // (e.g. -5 + -2).
  Model m;
  const int x = m.add_variable(-5, 5, 1.0);
  const int y = m.add_variable(-5, 5, 1.0);
  m.set_integer(x);
  m.set_integer(y);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::GreaterEqual, -7.3);
  const MilpResult r = BranchAndBound().solve(m);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, -7.0, 1e-6);
}

TEST(MilpOptions, UnboundedRelaxationReported) {
  Model m;
  const int x = m.add_variable(0, kInf, 1.0);
  m.set_integer(x);
  m.set_sense(Sense::Maximize);
  EXPECT_EQ(BranchAndBound().solve(m).status, SolveStatus::Unbounded);
}

TEST(MilpOptions, MinimizeSenseBranchAndBound) {
  // min 3a + 4b s.t. a + b >= 3.5, integers >= 0 -> (3.5 -> 4 units):
  // a=4,b=0 -> 12; a=3,b=1 -> 13; so optimum 12.
  Model m;
  const int a = m.add_variable(0, kInf, 3.0);
  const int b = m.add_variable(0, kInf, 4.0);
  m.set_integer(a);
  m.set_integer(b);
  m.add_constraint({{a, 1.0}, {b, 1.0}}, Relation::GreaterEqual, 3.5);
  const MilpResult r = BranchAndBound().solve(m);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, 12.0, 1e-6);
}

TEST(MilpOptions, TightBoundsPruneWholeSubtrees) {
  // Equality-pinned integers leave a single feasible point.
  Model m;
  const int a = m.add_variable(0, 10, 1.0);
  const int b = m.add_variable(0, 10, 1.0);
  m.set_integer(a);
  m.set_integer(b);
  m.set_sense(Sense::Maximize);
  m.add_constraint({{a, 1.0}, {b, 2.0}}, Relation::Equal, 7.0);
  m.add_constraint({{a, 2.0}, {b, 1.0}}, Relation::Equal, 8.0);
  const MilpResult r = BranchAndBound().solve(m);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.x[a], 3.0, 1e-6);
  EXPECT_NEAR(r.x[b], 2.0, 1e-6);
}

TEST(MilpOptions, RandomKnapsacksMatchDynamicProgramming) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(4, 10));
    const int cap = static_cast<int>(rng.uniform_int(5, 25));
    std::vector<int> weight(n), value(n);
    Model m;
    std::vector<Term> row;
    for (int j = 0; j < n; ++j) {
      weight[j] = static_cast<int>(rng.uniform_int(1, 10));
      value[j] = static_cast<int>(rng.uniform_int(1, 20));
      const int v = m.add_variable(0, 1, value[j]);
      m.set_integer(v);
      row.push_back({v, static_cast<double>(weight[j])});
    }
    m.set_sense(Sense::Maximize);
    m.add_constraint(row, Relation::LessEqual, static_cast<double>(cap));

    // 0/1 knapsack DP reference.
    std::vector<int> dp(cap + 1, 0);
    for (int j = 0; j < n; ++j)
      for (int c = cap; c >= weight[j]; --c)
        dp[c] = std::max(dp[c], dp[c - weight[j]] + value[j]);

    const MilpResult r = BranchAndBound().solve(m);
    ASSERT_EQ(r.status, SolveStatus::Optimal) << trial;
    EXPECT_NEAR(r.objective, dp[cap], 1e-6) << trial;
  }
}

}  // namespace
}  // namespace dls::lp
