#include "lp/model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/error.hpp"

namespace dls::lp {
namespace {

TEST(Model, AddVariableReturnsSequentialIndices) {
  Model m;
  EXPECT_EQ(m.add_variable(0, 1, 2.0), 0);
  EXPECT_EQ(m.add_variable(0, kInf, -1.0, "y"), 1);
  EXPECT_EQ(m.num_variables(), 2);
  EXPECT_EQ(m.lower_bound(1), 0.0);
  EXPECT_EQ(m.upper_bound(0), 1.0);
  EXPECT_EQ(m.objective_coef(0), 2.0);
  EXPECT_EQ(m.variable_name(1), "y");
}

TEST(Model, RejectsInvalidVariable) {
  Model m;
  EXPECT_THROW(m.add_variable(1.0, 0.0, 0.0), Error);        // lb > ub
  EXPECT_THROW(m.add_variable(0.0, 1.0, kInf), Error);       // non-finite obj
}

TEST(Model, ConstraintMergesDuplicateTerms) {
  Model m;
  const int x = m.add_variable(0, kInf, 0);
  const int y = m.add_variable(0, kInf, 0);
  const int c = m.add_constraint({{x, 1.0}, {y, 2.0}, {x, 3.0}}, Relation::LessEqual, 5.0);
  const auto row = m.row(c);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0].var, x);
  EXPECT_DOUBLE_EQ(row[0].coef, 4.0);
  EXPECT_EQ(row[1].var, y);
}

TEST(Model, ConstraintDropsZeroCoefficients) {
  Model m;
  const int x = m.add_variable(0, kInf, 0);
  const int y = m.add_variable(0, kInf, 0);
  const int c = m.add_constraint({{x, 1.0}, {y, 0.0}}, Relation::Equal, 1.0);
  EXPECT_EQ(m.row(c).size(), 1u);
}

TEST(Model, ConstraintRejectsBadInput) {
  Model m;
  m.add_variable(0, 1, 0);
  EXPECT_THROW(m.add_constraint({{5, 1.0}}, Relation::LessEqual, 0.0), Error);
  EXPECT_THROW(m.add_constraint({{0, 1.0}}, Relation::LessEqual, kInf), Error);
}

TEST(Model, ObjectiveValueIncludesConstant) {
  Model m;
  m.add_variable(0, 10, 2.0);
  m.add_variable(0, 10, -1.0);
  m.set_objective_constant(5.0);
  const std::vector<double> x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(m.objective_value(x), 5.0 + 6.0 - 4.0);
}

TEST(Model, FeasibilityCheck) {
  Model m;
  const int x = m.add_variable(0, 10, 0);
  const int y = m.add_variable(0, 10, 0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::LessEqual, 5.0);
  m.add_constraint({{x, 1.0}}, Relation::GreaterEqual, 1.0);
  m.add_constraint({{y, 2.0}}, Relation::Equal, 4.0);

  EXPECT_TRUE(m.is_feasible(std::vector<double>{2.0, 2.0}, 1e-9));
  EXPECT_FALSE(m.is_feasible(std::vector<double>{4.0, 2.0}, 1e-9));  // row 0
  EXPECT_FALSE(m.is_feasible(std::vector<double>{0.5, 2.0}, 1e-9));  // row 1
  EXPECT_FALSE(m.is_feasible(std::vector<double>{2.0, 1.0}, 1e-9));  // row 2
  EXPECT_FALSE(m.is_feasible(std::vector<double>{-1.0, 2.0}, 1e-9)); // bound
  EXPECT_FALSE(m.is_feasible(std::vector<double>{2.0}, 1e-9));       // arity
}

TEST(Model, IntegerMarks) {
  Model m;
  const int x = m.add_variable(0, 10, 0);
  m.add_variable(0, 10, 0);
  m.set_integer(x);
  EXPECT_TRUE(m.is_integer(x));
  EXPECT_FALSE(m.is_integer(1));
  EXPECT_TRUE(m.is_integer_feasible(std::vector<double>{3.0, 2.5}, 1e-6));
  EXPECT_FALSE(m.is_integer_feasible(std::vector<double>{3.3, 2.5}, 1e-6));
}

TEST(Model, SetBoundsValidates) {
  Model m;
  const int x = m.add_variable(0, 1, 0);
  m.set_bounds(x, -1, 2);
  EXPECT_EQ(m.lower_bound(x), -1.0);
  EXPECT_THROW(m.set_bounds(x, 3, 2), Error);
}

}  // namespace
}  // namespace dls::lp
