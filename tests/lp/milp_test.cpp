#include "lp/milp.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/model.hpp"
#include "support/rng.hpp"

namespace dls::lp {
namespace {

constexpr double kTol = 1e-5;

TEST(Milp, PureIntegerKnapsack) {
  // max 8a + 11b + 6c + 4d, 5a + 7b + 4c + 3d <= 14, binary.
  // Optimum: a=0? classic answer {b,c,d}? 11+6+4=21 weight 14. vs {a,b}=19 w12.
  Model m;
  std::vector<int> v;
  const double val[] = {8, 11, 6, 4}, wt[] = {5, 7, 4, 3};
  std::vector<Term> row;
  for (int j = 0; j < 4; ++j) {
    v.push_back(m.add_variable(0, 1, val[j]));
    m.set_integer(v.back());
    row.push_back({v[j], wt[j]});
  }
  m.set_sense(Sense::Maximize);
  m.add_constraint(row, Relation::LessEqual, 14.0);

  const MilpResult r = BranchAndBound().solve(m);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, 21.0, kTol);
  EXPECT_NEAR(r.x[v[1]] + r.x[v[2]] + r.x[v[3]], 3.0, kTol);
}

TEST(Milp, MixedIntegerRational) {
  // max x + 10y, x rational in [0, 3.7], y integer, x + 2y <= 5.
  // y = 2 forces x <= 1 -> obj 21; y = 1 -> x = 3 -> 13. Optimum 21.
  Model m;
  const int x = m.add_variable(0, 3.7, 1.0);
  const int y = m.add_variable(0, kInf, 10.0);
  m.set_integer(y);
  m.set_sense(Sense::Maximize);
  m.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::LessEqual, 5.0);

  const MilpResult r = BranchAndBound().solve(m);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, 21.0, kTol);
  EXPECT_NEAR(r.x[y], 2.0, kTol);
  EXPECT_NEAR(r.x[x], 1.0, kTol);
}

TEST(Milp, IntegralityGapInstance) {
  // LP relaxation gives fractional optimum; MILP must round properly.
  // max y s.t. 2y <= 3, y integer -> 1 (relaxation: 1.5).
  Model m;
  const int y = m.add_variable(0, kInf, 1.0);
  m.set_integer(y);
  m.set_sense(Sense::Maximize);
  m.add_constraint({{y, 2.0}}, Relation::LessEqual, 3.0);
  const MilpResult r = BranchAndBound().solve(m);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, 1.0, kTol);
}

TEST(Milp, InfeasibleInteger) {
  // 0.4 <= y <= 0.6, y integer: LP feasible, MILP infeasible.
  Model m;
  const int y = m.add_variable(0.4, 0.6, 1.0);
  m.set_integer(y);
  EXPECT_EQ(BranchAndBound().solve(m).status, SolveStatus::Infeasible);
}

TEST(Milp, InfeasibleLp) {
  Model m;
  const int y = m.add_variable(0, 1, 1.0);
  m.set_integer(y);
  m.add_constraint({{y, 1.0}}, Relation::GreaterEqual, 2.0);
  EXPECT_EQ(BranchAndBound().solve(m).status, SolveStatus::Infeasible);
}

TEST(Milp, NoIntegerVariablesReducesToLp) {
  Model m;
  const int x = m.add_variable(0, 2.5, 1.0);
  m.set_sense(Sense::Maximize);
  m.add_constraint({{x, 1.0}}, Relation::LessEqual, 9.0);
  const MilpResult r = BranchAndBound().solve(m);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, 2.5, kTol);
  EXPECT_EQ(r.nodes, 1);
}

TEST(Milp, EqualityWithIntegers) {
  // 3a + 5b = 22, minimize a + b over nonnegative integers -> a=4, b=2.
  Model m;
  const int a = m.add_variable(0, kInf, 1.0);
  const int b = m.add_variable(0, kInf, 1.0);
  m.set_integer(a);
  m.set_integer(b);
  m.add_constraint({{a, 3.0}, {b, 5.0}}, Relation::Equal, 22.0);
  const MilpResult r = BranchAndBound().solve(m);
  ASSERT_EQ(r.status, SolveStatus::Optimal);
  EXPECT_NEAR(r.objective, 6.0, kTol);
}

TEST(Milp, MatchesBruteForceOnRandomSmallInstances) {
  // Exhaustive enumeration over small integer boxes cross-checks B&B.
  Rng rng(99);
  for (int iter = 0; iter < 60; ++iter) {
    const int n = static_cast<int>(rng.uniform_int(1, 3));
    Model m;
    std::vector<int> vars(n);
    std::vector<int> ubs(n);
    for (int j = 0; j < n; ++j) {
      ubs[j] = static_cast<int>(rng.uniform_int(1, 4));
      vars[j] = m.add_variable(0, ubs[j], rng.uniform(-3.0, 3.0));
      m.set_integer(vars[j]);
    }
    m.set_sense(Sense::Maximize);
    const int rows = static_cast<int>(rng.uniform_int(1, 3));
    for (int i = 0; i < rows; ++i) {
      std::vector<Term> terms;
      for (int j = 0; j < n; ++j) terms.push_back({vars[j], rng.uniform(-2.0, 2.0)});
      m.add_constraint(std::move(terms), Relation::LessEqual, rng.uniform(0.0, 6.0));
    }

    // Brute force.
    double best = -1e300;
    bool any = false;
    std::vector<double> x(n, 0.0);
    std::vector<int> counter(n, 0);
    while (true) {
      for (int j = 0; j < n; ++j) x[j] = counter[j];
      if (m.is_feasible(x, 1e-9)) {
        any = true;
        best = std::max(best, m.objective_value(x));
      }
      int carry = 0;
      while (carry < n && ++counter[carry] > ubs[carry]) counter[carry++] = 0;
      if (carry == n) break;
    }

    const MilpResult r = BranchAndBound().solve(m);
    if (!any) {
      EXPECT_EQ(r.status, SolveStatus::Infeasible) << "iter " << iter;
    } else {
      ASSERT_EQ(r.status, SolveStatus::Optimal) << "iter " << iter;
      EXPECT_NEAR(r.objective, best, 1e-5) << "iter " << iter;
      EXPECT_TRUE(m.is_feasible(r.x, 1e-6));
      EXPECT_TRUE(m.is_integer_feasible(r.x, 1e-6));
    }
  }
}

TEST(Milp, NodeLimitReported) {
  // A 12-variable knapsack with the node budget strangled to 3 nodes.
  Rng rng(5);
  Model m;
  std::vector<Term> row;
  for (int j = 0; j < 12; ++j) {
    const int v = m.add_variable(0, 1, rng.uniform(1.0, 10.0));
    m.set_integer(v);
    row.push_back({v, rng.uniform(1.0, 10.0)});
  }
  m.set_sense(Sense::Maximize);
  m.add_constraint(row, Relation::LessEqual, 15.0);
  MilpOptions opt;
  opt.max_nodes = 3;
  const MilpResult r = BranchAndBound(opt).solve(m);
  EXPECT_EQ(r.status, SolveStatus::NodeLimit);
}

}  // namespace
}  // namespace dls::lp
