// Pricing-rule and refactorization-policy equivalence tests (ISSUE 6).
//
// Every pricing rule (Dantzig, Partial, SteepestEdge) under every basis
// representation (SparseLu, DenseInverse) walks a different pivot path,
// but they all solve the same LP: the optimal objective must agree to
// rounding error on every model. The refactorization policy (eta-fill
// trigger, capsule compression) only changes *when* the basis is
// refactorized, never what it represents — so any policy setting must
// reproduce the reference solve exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/problem.hpp"
#include "lp/model.hpp"
#include "lp/simplex.hpp"
#include "platform/generator.hpp"
#include "support/rng.hpp"

namespace dls::lp {
namespace {

constexpr double kObjTol = 1e-6;

const std::vector<Pricing> kRules{Pricing::Dantzig, Pricing::Partial,
                                  Pricing::SteepestEdge};
const std::vector<Factorization> kFactorizations{Factorization::SparseLu,
                                                 Factorization::DenseInverse};

Solution solve_with(const Model& m, Factorization f, Pricing p,
                    SimplexOptions opt = {}) {
  opt.factorization = f;
  opt.pricing = p;
  return SimplexSolver(opt).solve(m);
}

bool close(double a, double b) {
  return std::abs(a - b) <= kObjTol * std::max(1.0, std::abs(a));
}

/// Random feasible maximize-LP with box bounds (interior-point trick).
Model make_random_lp(Rng& rng, int n, int m) {
  Model model;
  std::vector<double> interior(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    const double hi = rng.uniform(1.0, 20.0);
    model.add_variable(0.0, hi, rng.uniform(-5.0, 5.0));
    interior[static_cast<std::size_t>(j)] = rng.uniform(0.0, hi);
  }
  model.set_sense(Sense::Maximize);
  for (int i = 0; i < m; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j)
      if (rng.bernoulli(0.4) && terms.size() + 1 < 12)
        terms.push_back({j, rng.uniform(-3.0, 3.0)});
    if (terms.empty()) terms.push_back({static_cast<int>(rng.index(n)), 1.0});
    double activity = 0.0;
    for (const Term& t : terms)
      activity += t.coef * interior[static_cast<std::size_t>(t.var)];
    model.add_constraint(std::move(terms), Relation::LessEqual,
                         activity + rng.uniform(0.1, 5.0));
  }
  return model;
}

/// The repo's real workload: a Table-1-style steady-state reduced model.
Model make_steady_model(int k, std::uint64_t seed) {
  platform::GeneratorParams params;
  params.num_clusters = k;
  params.connectivity = std::min(0.4, 8.0 / k);
  params.ensure_connected = true;
  Rng rng(seed);
  const platform::Platform plat = generate_platform(params, rng);
  std::vector<double> payoffs(static_cast<std::size_t>(k), 0.0);
  for (int c = 0; c < k; c += 2)
    payoffs[static_cast<std::size_t>(c)] = 1.0 + 0.1 * (c % 5);
  const core::SteadyStateProblem problem(plat, payoffs, core::Objective::Sum);
  return problem.build_reduced().model;
}

TEST(SimplexPricing, AllRulesAgreeOnRandomLps) {
  Rng rng(61061);
  for (int iter = 0; iter < 60; ++iter) {
    const int n = static_cast<int>(rng.uniform_int(2, 14));
    const int m = static_cast<int>(rng.uniform_int(1, 14));
    const Model model = make_random_lp(rng, n, m);

    const Solution ref =
        solve_with(model, Factorization::DenseInverse, Pricing::Dantzig);
    ASSERT_EQ(ref.status, SolveStatus::Optimal) << "iter " << iter;
    for (const Factorization f : kFactorizations) {
      for (const Pricing p : kRules) {
        const Solution s = solve_with(model, f, p);
        ASSERT_EQ(s.status, SolveStatus::Optimal) << "iter " << iter;
        EXPECT_TRUE(close(ref.objective, s.objective))
            << "iter " << iter << ": " << ref.objective << " vs "
            << s.objective;
        EXPECT_TRUE(model.is_feasible(s.x, 1e-6)) << "iter " << iter;
      }
    }
  }
}

TEST(SimplexPricing, AllRulesAgreeOnSteadyStateModel) {
  const Model model = make_steady_model(32, 777);
  const Solution dantzig =
      solve_with(model, Factorization::SparseLu, Pricing::Dantzig);
  ASSERT_EQ(dantzig.status, SolveStatus::Optimal);
  for (const Factorization f : kFactorizations) {
    for (const Pricing p : kRules) {
      const Solution s = solve_with(model, f, p);
      ASSERT_EQ(s.status, SolveStatus::Optimal);
      EXPECT_TRUE(close(dantzig.objective, s.objective));
    }
  }
  // The point of steepest-edge: materially fewer pivots than Dantzig on
  // the real workload (deterministic model, deterministic pivot paths).
  const Solution se =
      solve_with(model, Factorization::SparseLu, Pricing::SteepestEdge);
  EXPECT_LT(se.iterations, dantzig.iterations);
}

TEST(SimplexPricing, DegenerateTiesSolveUnderEveryRule) {
  // Heavily degenerate: every vertex of the assignment-like polytope has
  // many ties, which stresses the Bland fallback interplay.
  Model m;
  for (int j = 0; j < 6; ++j) m.add_variable(0.0, 1.0, 1.0);
  m.set_sense(Sense::Maximize);
  for (int i = 0; i < 3; ++i)
    m.add_constraint({{2 * i, 1.0}, {2 * i + 1, 1.0}}, Relation::LessEqual, 1.0);
  m.add_constraint({{0, 1.0}, {2, 1.0}, {4, 1.0}}, Relation::LessEqual, 2.0);
  m.add_constraint({{1, 1.0}, {3, 1.0}, {5, 1.0}}, Relation::LessEqual, 2.0);
  for (const Factorization f : kFactorizations) {
    for (const Pricing p : kRules) {
      const Solution s = solve_with(m, f, p);
      ASSERT_EQ(s.status, SolveStatus::Optimal);
      EXPECT_TRUE(close(3.0, s.objective));
    }
  }
}

TEST(SimplexPricing, FillTriggerMatchesFixedIntervalResults) {
  const Model model = make_steady_model(32, 4242);
  SimplexOptions reference;
  reference.refactor_fill = 0.0;  // historical fixed-interval policy
  const Solution ref = SimplexSolver(reference).solve(model);
  ASSERT_EQ(ref.status, SolveStatus::Optimal);

  for (const double fill : {0.25, 1.0, 4.0}) {
    SimplexOptions opt;
    opt.refactor_fill = fill;
    const Solution s = SimplexSolver(opt).solve(model);
    ASSERT_EQ(s.status, SolveStatus::Optimal);
    // Refactorization frequency may perturb the pivot path (a refactor
    // recomputes basic values, nudging near-tied ratio tests) but never
    // the optimum it converges to.
    EXPECT_TRUE(close(ref.objective, s.objective)) << "fill " << fill;
  }
  // A tight trigger refactorizes at least as often as a loose one.
  SimplexOptions tight, loose;
  tight.refactor_fill = 0.05;
  loose.refactor_fill = 16.0;
  EXPECT_GE(SimplexSolver(tight).solve(model).refactorizations,
            SimplexSolver(loose).solve(model).refactorizations);
}

TEST(SimplexPricing, CapsuleCompressionPreservesWarmSolves) {
  const Model model = make_steady_model(24, 99);
  for (const double capsule_fill : {0.0, 0.05, 1e9}) {
    SimplexOptions opt;
    opt.capsule_eta_fill = capsule_fill;
    const SimplexSolver solver(opt);
    WarmState state;
    const Solution cold = solver.solve(model, &state);
    ASSERT_EQ(cold.status, SolveStatus::Optimal);
    const Solution warm = solver.solve(model, &state);
    ASSERT_EQ(warm.status, SolveStatus::Optimal);
    EXPECT_TRUE(warm.warm_used);
    // A compressed capsule (fresh factorization, no eta file) and an
    // uncompressed one represent the same basis: the warm re-solve must
    // land on the same objective with zero pivots either way.
    EXPECT_EQ(warm.iterations, 0) << "capsule_fill " << capsule_fill;
    EXPECT_TRUE(close(cold.objective, warm.objective));
  }
  // Compression actually shrinks the capsule when the eta file is fat.
  SimplexOptions keep, compress;
  keep.capsule_eta_fill = 1e9;     // never compress
  compress.capsule_eta_fill = 0.0;  // always refactorize before saving
  WarmState kept, compressed;
  (void)SimplexSolver(keep).solve(model, &kept);
  (void)SimplexSolver(compress).solve(model, &compressed);
  EXPECT_LE(compressed.memory_bytes(), kept.memory_bytes());
}

TEST(SimplexPricing, AutoFactorizationUsesCrossover) {
  SimplexOptions opt;  // defaults: Factorization::Auto
  const Model small = make_steady_model(16, 5);  // well under the crossover
  const Solution s_small = SimplexSolver(opt).solve(small);
  ASSERT_EQ(s_small.status, SolveStatus::Optimal);
  EXPECT_EQ(s_small.factorization_used, Factorization::DenseInverse);

  const Model large = make_steady_model(48, 5);  // hundreds of rows
  const Solution s_large = SimplexSolver(opt).solve(large);
  ASSERT_EQ(s_large.status, SolveStatus::Optimal);
  EXPECT_EQ(s_large.factorization_used, Factorization::SparseLu);
  EXPECT_EQ(s_large.pricing_used, Pricing::SteepestEdge);  // Auto pricing

  SimplexOptions forced = opt;
  forced.dense_crossover_rows = 0;
  EXPECT_EQ(SimplexSolver(forced).solve(small).factorization_used,
            Factorization::SparseLu);
}

TEST(SimplexPricing, SolutionCarriesKernelStats) {
  const Model model = make_steady_model(32, 31);
  SimplexOptions opt;
  opt.refactor_fill = 0.5;
  const Solution s = SimplexSolver(opt).solve(model);
  ASSERT_EQ(s.status, SolveStatus::Optimal);
  EXPECT_GT(s.iterations, 0);
  EXPECT_GE(s.refactorizations, 0);
  EXPECT_GT(s.eta_peak_nnz, 0u);
}

}  // namespace
}  // namespace dls::lp
