// Arrival models and the .workload serialization format.
#include "online/workload.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/error.hpp"

namespace dls::online {
namespace {

TEST(Workload, PoissonIsSortedDeterministicAndInRange) {
  PoissonParams p;
  p.count = 500;
  p.rate = 2.0;
  Rng a(42), b(42);
  const Workload wa = poisson_workload(p, 8, a);
  const Workload wb = poisson_workload(p, 8, b);
  ASSERT_EQ(wa.size(), 500);
  EXPECT_EQ(to_text(wa), to_text(wb));
  EXPECT_NO_THROW(wa.validate(8));
  double prev = 0.0;
  for (const AppArrival& app : wa.arrivals) {
    EXPECT_GE(app.time, prev);
    EXPECT_GE(app.cluster, 0);
    EXPECT_LT(app.cluster, 8);
    EXPECT_GE(app.load, p.mean_load * (1.0 - p.load_spread) - 1e-9);
    EXPECT_LE(app.load, p.mean_load * (1.0 + p.load_spread) + 1e-9);
    EXPECT_GT(app.payoff, 0.0);
    prev = app.time;
  }
}

TEST(Workload, PoissonMeanGapMatchesRate) {
  PoissonParams p;
  p.count = 4000;
  p.rate = 5.0;
  Rng rng(7);
  const Workload w = poisson_workload(p, 4, rng);
  const double mean_gap = w.arrivals.back().time / p.count;
  EXPECT_NEAR(mean_gap, 1.0 / p.rate, 0.02);
}

TEST(Workload, OnOffIsBurstier) {
  // Same mean load of arrivals, but ON/OFF should produce a larger
  // variance of inter-arrival gaps than Poisson at the matched mean rate.
  const int n = 4000;
  Rng rng(11);
  OnOffParams oo;
  oo.count = n;
  oo.burst_rate = 8.0;
  oo.mean_on = 10.0;
  oo.mean_off = 30.0;
  const Workload bursty = onoff_workload(oo, 4, rng);
  EXPECT_NO_THROW(bursty.validate(4));

  const double horizon = bursty.arrivals.back().time;
  PoissonParams p;
  p.count = n;
  p.rate = n / horizon;  // matched mean rate
  Rng rng2(11);
  const Workload smooth = poisson_workload(p, 4, rng2);

  const auto gap_cv2 = [](const Workload& w) {  // squared coeff. of variation
    double mean = 0.0, m2 = 0.0;
    const std::size_t n_gaps = w.arrivals.size() - 1;
    for (std::size_t i = 1; i < w.arrivals.size(); ++i)
      mean += w.arrivals[i].time - w.arrivals[i - 1].time;
    mean /= static_cast<double>(n_gaps);
    for (std::size_t i = 1; i < w.arrivals.size(); ++i) {
      const double d = w.arrivals[i].time - w.arrivals[i - 1].time - mean;
      m2 += d * d;
    }
    return m2 / static_cast<double>(n_gaps) / (mean * mean);
  };
  EXPECT_GT(gap_cv2(bursty), 2.0 * gap_cv2(smooth));
}

TEST(Workload, RoundTripsThroughText) {
  PoissonParams p;
  p.count = 50;
  Rng rng(3);
  Workload w = poisson_workload(p, 5, rng);
  w.arrivals[0].name = "first-app";
  const std::string text = to_text(w);
  const Workload back = from_text(text);
  ASSERT_EQ(back.size(), w.size());
  EXPECT_EQ(back.arrivals[0].name, "first-app");
  EXPECT_EQ(back.arrivals[1].name, "");
  for (int i = 0; i < w.size(); ++i) {
    EXPECT_EQ(back.arrivals[i].time, w.arrivals[i].time);  // bit-exact
    EXPECT_EQ(back.arrivals[i].cluster, w.arrivals[i].cluster);
    EXPECT_EQ(back.arrivals[i].payoff, w.arrivals[i].payoff);
    EXPECT_EQ(back.arrivals[i].load, w.arrivals[i].load);
  }
}

TEST(Workload, ReaderRejectsMalformedInput) {
  EXPECT_THROW(from_text("nonsense 1\n"), Error);
  EXPECT_THROW(from_text("dls-workload 2\n"), Error);
  EXPECT_THROW(from_text("dls-workload 1\nfrob 1 2 3 4 -\n"), Error);
  EXPECT_THROW(from_text("dls-workload 1\napp 1.0 0 1.0\n"), Error);
  EXPECT_THROW(from_text("dls-workload 1\napp 1.0 0 1.0 50 two words\n"),
               Error);
  EXPECT_NO_THROW(from_text("dls-workload 1\n"));
  EXPECT_NO_THROW(from_text("dls-workload 1\napp 1.0 0 1.0 50 -\n"));
}

TEST(Workload, ReaderDiagnosticsNameLineAndDefect) {
  const auto fails_with = [](const std::string& text, const std::string& what) {
    try {
      (void)from_text(text);
      ADD_FAILURE() << "expected failure for: " << text;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(what), std::string::npos)
          << "got: " << e.what();
    }
  };
  fails_with("dls-workload 1\napp 1.0 0\n", "truncated or malformed");
  fails_with("dls-workload 1\napp -3 0 1.0 50\n", "non-negative");
  fails_with("dls-workload 1\napp 5 0 1 50\napp 2 0 1 50\n",
             "out-of-order arrival");
  fails_with("dls-workload 1\napp 1.0 0.5 1.0 50\n", "integer id");
  fails_with("dls-workload 1\napp 1.0 0 -1.0 50\n", "payoff must be positive");
  fails_with("dls-workload 1\napp 1.0 0 1.0 0\n", "load must be positive");
  // The defect names its line (defect on line 3 here).
  try {
    (void)from_text("dls-workload 1\napp 1 0 1 50\napp 2 0 1\n");
    ADD_FAILURE() << "expected failure";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << "got: " << e.what();
  }
  // Blank lines are tolerated and not counted as records.
  const Workload w =
      from_text("dls-workload 1\n\napp 1 0 1 50 -\n\napp 2 1 1 60 job\n");
  ASSERT_EQ(w.size(), 2);
  EXPECT_EQ(w.arrivals[1].name, "job");
}

TEST(Workload, ReaderAcceptsOmittedNames) {
  // The documented format marks the name optional; lines without it must
  // not swallow the following line's keyword.
  const Workload w = from_text(
      "dls-workload 1\n"
      "app 0.0 0 1.0 120\n"
      "app 0.5 1 1.5 80 beta\n"
      "app 0.6 0 1.0 60\n");
  ASSERT_EQ(w.size(), 3);
  EXPECT_EQ(w.arrivals[0].name, "");
  EXPECT_EQ(w.arrivals[1].name, "beta");
  EXPECT_EQ(w.arrivals[2].name, "");
  EXPECT_DOUBLE_EQ(w.arrivals[2].load, 60.0);
}

TEST(Workload, ValidateCatchesBadStreams) {
  Workload w;
  w.arrivals.push_back({1.0, 0, 1.0, 10.0, ""});
  w.arrivals.push_back({0.5, 0, 1.0, 10.0, ""});  // out of order
  EXPECT_THROW(w.validate(4), Error);
  w.arrivals.clear();
  w.arrivals.push_back({1.0, 7, 1.0, 10.0, ""});  // cluster out of range
  EXPECT_THROW(w.validate(4), Error);
  w.arrivals.clear();
  w.arrivals.push_back({1.0, 0, 0.0, 10.0, ""});  // zero payoff
  EXPECT_THROW(w.validate(4), Error);
  w.arrivals.clear();
  w.arrivals.push_back({1.0, 0, 1.0, -1.0, ""});  // negative load
  EXPECT_THROW(w.validate(4), Error);
}

TEST(Workload, GeneratorsRejectBadParameters) {
  Rng rng(1);
  PoissonParams p;
  p.rate = 0.0;
  EXPECT_THROW(poisson_workload(p, 4, rng), Error);
  p = {};
  p.load_spread = 1.0;
  EXPECT_THROW(poisson_workload(p, 4, rng), Error);
  EXPECT_THROW(poisson_workload({}, 0, rng), Error);
  OnOffParams oo;
  oo.burst_rate = -1.0;
  EXPECT_THROW(onoff_workload(oo, 4, rng), Error);
}

}  // namespace
}  // namespace dls::online
