// Online lifecycle engine: admission/queueing semantics, conservation,
// determinism, and the warm-vs-cold throughput cross-check at the
// engine level.
#include "online/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "platform/generator.hpp"

namespace dls::online {
namespace {

platform::Platform test_platform(int k, std::uint64_t seed) {
  platform::GeneratorParams params;
  params.num_clusters = k;
  params.ensure_connected = true;
  Rng rng(seed);
  return generate_platform(params, rng);
}

Workload poisson(int k, int count, std::uint64_t seed, double rate = 2.0) {
  PoissonParams p;
  p.count = count;
  p.rate = rate;
  Rng rng(seed);
  return poisson_workload(p, k, rng);
}

TEST(OnlineEngine, CompletesEveryApplicationAndConservesWork) {
  const platform::Platform plat = test_platform(6, 3);
  const Workload wl = poisson(6, 120, 5);
  const OnlineEngine engine(plat, {});
  const OnlineReport report = engine.run(wl);
  EXPECT_EQ(report.arrivals, 120);
  EXPECT_EQ(report.completed, 120);
  EXPECT_EQ(static_cast<int>(report.apps.size()), 120);
  double total_load = 0.0;
  for (const AppArrival& a : wl.arrivals) total_load += a.load;
  EXPECT_NEAR(report.total_work, total_load, 1e-3 * total_load);
  for (const AppRecord& app : report.apps) {
    EXPECT_GE(app.admit, app.arrival - 1e-9);
    EXPECT_GT(app.depart, app.admit);
    EXPECT_LE(app.depart, report.makespan + 1e-9);
  }
  EXPECT_EQ(report.metrics.response.count(), 120u);
}

TEST(OnlineEngine, DeterministicAcrossRuns) {
  const platform::Platform plat = test_platform(8, 7);
  const Workload wl = poisson(8, 200, 9, 4.0);
  const OnlineEngine engine(plat, {});
  const OnlineReport a = engine.run(wl);
  const OnlineReport b = engine.run(wl);
  EXPECT_EQ(a.reschedules, b.reschedules);
  EXPECT_EQ(a.makespan, b.makespan);  // bit-exact
  EXPECT_EQ(a.metrics.response.mean(), b.metrics.response.mean());
  for (std::size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].admit, b.apps[i].admit);
    EXPECT_EQ(a.apps[i].depart, b.apps[i].depart);
  }
}

TEST(OnlineEngine, FifoAdmissionPerCluster) {
  // All arrivals target cluster 0: they must be admitted in order, one
  // at a time, each admitted exactly when its predecessor departs.
  const platform::Platform plat = test_platform(4, 11);
  Workload wl;
  // Loads far larger than what drains during the arrival window, so the
  // queue builds to its full depth before the first departure.
  for (int i = 0; i < 5; ++i)
    wl.arrivals.push_back({0.1 * i, 0, 1.0, 500.0, ""});
  const OnlineEngine engine(plat, {});
  const OnlineReport report = engine.run(wl);
  ASSERT_EQ(report.completed, 5);
  EXPECT_EQ(report.peak_active, 1);
  EXPECT_EQ(report.queued_arrivals, 4);
  EXPECT_EQ(report.peak_queued, 4);
  for (int i = 1; i < 5; ++i) {
    EXPECT_GE(report.apps[i].admit, report.apps[i - 1].depart - 1e-9);
    EXPECT_NEAR(report.apps[i].admit, report.apps[i - 1].depart, 1e-9);
  }
}

TEST(OnlineEngine, QueuedArrivalDoesNotTriggerReschedule) {
  const platform::Platform plat = test_platform(4, 13);
  Workload wl;
  wl.arrivals.push_back({0.0, 0, 1.0, 100.0, ""});
  wl.arrivals.push_back({0.1, 0, 1.0, 100.0, ""});  // queues behind the first
  const OnlineEngine engine(plat, {});
  const OnlineReport report = engine.run(wl);
  // Events: admit #0 (reschedule), queued #1 (none), depart #0 + admit #1
  // (reschedule), depart #1 (no actives left: rates cleared, no solve).
  EXPECT_EQ(report.reschedules, 2);
  EXPECT_EQ(report.queued_arrivals, 1);
}

TEST(OnlineEngine, WarmAndColdBothDrainTheWholeWorkload) {
  // Engine-level companion of the rescheduler's warm==cold objective
  // cross-check. Per-event objectives are identical, but degenerate LPs
  // may have several optimal vertices, so the two *trajectories* are
  // allowed to differ — both runs must still drain every application
  // and deliver the same total work (the sum of all loads).
  const platform::Platform plat = test_platform(8, 17);
  const Workload wl = poisson(8, 150, 19, 3.0);
  OnlineOptions warm_opt;
  warm_opt.sched.method = Method::LpBound;
  warm_opt.sched.objective = core::Objective::Sum;
  warm_opt.sched.warm = WarmPolicy::Auto;
  OnlineOptions cold_opt = warm_opt;
  cold_opt.sched.warm = WarmPolicy::Never;
  const OnlineReport warm = OnlineEngine(plat, warm_opt).run(wl);
  const OnlineReport cold = OnlineEngine(plat, cold_opt).run(wl);
  EXPECT_GT(warm.warm_solves, 0);
  EXPECT_EQ(cold.warm_solves, 0);
  EXPECT_EQ(warm.completed, cold.completed);
  EXPECT_NEAR(warm.total_work, cold.total_work, 1e-6 * cold.total_work);
}

TEST(OnlineEngine, SimulatedRateModelRuns) {
  const platform::Platform plat = test_platform(5, 23);
  const Workload wl = poisson(5, 25, 29);
  OnlineOptions options;
  options.rate_model = RateModel::Simulated;
  options.sim_policy = sim::SharingPolicy::MaxMin;
  const OnlineReport report = OnlineEngine(plat, options).run(wl);
  EXPECT_EQ(report.completed, 25);
  // Work-conserving sharing can beat or trail the fluid plan, but the
  // run must still drain everything and stay deterministic.
  const OnlineReport again = OnlineEngine(plat, options).run(wl);
  EXPECT_EQ(report.makespan, again.makespan);
}

TEST(OnlineEngine, UtilizationAndFairnessAreInRange) {
  const platform::Platform plat = test_platform(6, 31);
  const Workload wl = poisson(6, 80, 37, 3.0);
  const OnlineReport report = OnlineEngine(plat, {}).run(wl);
  EXPECT_GT(report.metrics.utilization.mean(), 0.0);
  EXPECT_LE(report.metrics.utilization.mean(), 1.0 + 1e-9);
  EXPECT_GT(report.metrics.fairness.mean(), 0.0);
  EXPECT_LE(report.metrics.fairness.mean(), 1.0 + 1e-9);
  EXPECT_GE(report.metrics.wait.mean(), 0.0);
  EXPECT_GT(report.makespan, 0.0);
}

TEST(OnlineEngine, RejectsLoadsBelowEpsilonAndBadClusters) {
  const platform::Platform plat = test_platform(4, 41);
  Workload wl;
  wl.arrivals.push_back({0.0, 0, 1.0, 1e-9, ""});
  EXPECT_THROW((void)OnlineEngine(plat, {}).run(wl), Error);
  wl.arrivals.clear();
  wl.arrivals.push_back({0.0, 9, 1.0, 10.0, ""});
  EXPECT_THROW((void)OnlineEngine(plat, {}).run(wl), Error);
}

TEST(OnlineEngine, EmptyWorkloadIsANoop) {
  const platform::Platform plat = test_platform(4, 43);
  const OnlineReport report = OnlineEngine(plat, {}).run(Workload{});
  EXPECT_EQ(report.arrivals, 0);
  EXPECT_EQ(report.completed, 0);
  EXPECT_EQ(report.reschedules, 0);
  EXPECT_EQ(report.makespan, 0.0);
}

}  // namespace
}  // namespace dls::online
