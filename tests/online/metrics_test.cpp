// Online metric primitives: Jain index, time-weighted means, and the
// aggregation rules.
#include "online/metrics.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dls::online {
namespace {

TEST(Metrics, JainIndexKnownValues) {
  const std::vector<double> even{2.0, 2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(jain_index(even), 1.0);
  const std::vector<double> one_hot{5.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(one_hot), 0.25);  // 1/n
  const std::vector<double> half{1.0, 1.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(half), 0.5);
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(zeros), 1.0);
}

TEST(Metrics, JainIndexScaleInvariant) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{10.0, 20.0, 30.0};
  EXPECT_DOUBLE_EQ(jain_index(a), jain_index(b));
}

TEST(Metrics, TimeWeightedMean) {
  TimeWeighted tw;
  EXPECT_DOUBLE_EQ(tw.mean(), 0.0);
  tw.add(1.0, 3.0);   // value 1 for 3 time units
  tw.add(5.0, 1.0);   // value 5 for 1 time unit
  EXPECT_DOUBLE_EQ(tw.mean(), 2.0);
  EXPECT_DOUBLE_EQ(tw.total_weight(), 4.0);
}

TEST(Metrics, RecordIntervalSkipsZeroDuration) {
  OnlineMetrics m;
  const std::vector<double> rates{1.0, 2.0};
  m.record_interval(0.0, 3.0, 10.0, rates);
  EXPECT_DOUBLE_EQ(m.utilization.total_weight(), 0.0);
  m.record_interval(2.0, 3.0, 10.0, rates);
  EXPECT_DOUBLE_EQ(m.utilization.mean(), 0.3);
  EXPECT_DOUBLE_EQ(m.active_apps.mean(), 2.0);
  EXPECT_DOUBLE_EQ(m.fairness.mean(), jain_index(rates));
}

TEST(Metrics, RecordCompletionFeedsAccumulators) {
  OnlineMetrics m;
  AppRecord app;
  app.arrival = 1.0;
  app.admit = 2.5;
  app.depart = 7.0;
  app.load = 100.0;
  app.slowdown = 1.5;
  m.record_completion(app);
  EXPECT_DOUBLE_EQ(m.response.mean(), 6.0);
  EXPECT_DOUBLE_EQ(m.wait.mean(), 1.5);
  EXPECT_DOUBLE_EQ(m.slowdown.mean(), 1.5);
  EXPECT_EQ(m.response.count(), 1u);
}

}  // namespace
}  // namespace dls::online
