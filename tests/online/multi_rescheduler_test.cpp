// MultiLoadRescheduler (ISSUE 8): the shared-LP warm patches must reach
// the same optima as cold re-solves at every arrival/departure event,
// survive slot growth, and stay correct while a platform-event trace
// churns capacities and topology under the LP.
#include "online/rescheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "dynamics/dynamic_platform.hpp"
#include "dynamics/events.hpp"
#include "platform/generator.hpp"

namespace dls::online {
namespace {

constexpr double kTol = 1e-7;

platform::Platform test_platform(int k, std::uint64_t seed) {
  platform::GeneratorParams params;
  params.num_clusters = k;
  params.ensure_connected = true;
  Rng rng(seed);
  return generate_platform(params, rng);
}

/// Arrival/departure/replacement churn that keeps ~target loads active.
/// Replacement steps (a departure and an arrival between two reschedules)
/// keep the active count constant — those are the events where the
/// max-min LP, whose shape is a function of the count, can warm-start.
std::vector<std::vector<ActiveLoad>> churn_sequence(int k, int steps,
                                                    double target,
                                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ActiveLoad> active;
  int next_id = 0;
  std::vector<std::vector<ActiveLoad>> seq;
  for (int s = 0; s < steps; ++s) {
    const bool replace = !active.empty() && rng.uniform01() < 0.3;
    const bool arrive =
        active.empty() ||
        rng.uniform(0.0, target) > static_cast<double>(active.size());
    if (replace || arrive) {
      ActiveLoad load;
      load.id = next_id++;
      load.cluster = static_cast<int>(rng.uniform_int(0, k - 1));
      load.weight = rng.uniform(0.5, 1.5);
      if (replace) {
        const std::size_t victim = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(active.size()) - 1));
        active[victim] = load;
      } else {
        active.push_back(load);
      }
    } else {
      const std::size_t victim = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(active.size()) - 1));
      active[victim] = active.back();
      active.pop_back();
    }
    if (!active.empty()) seq.push_back(active);
  }
  return seq;
}

void check_warm_equals_cold(core::MultiObjective objective, double rel_tol) {
  const platform::Platform plat = test_platform(8, 31);
  MultiReschedulerOptions warm_opt;
  warm_opt.solve.objective = objective;
  MultiReschedulerOptions cold_opt = warm_opt;
  cold_opt.warm = WarmPolicy::Never;
  MultiLoadRescheduler warm(plat, warm_opt), cold(plat, cold_opt);
  int warm_used = 0;
  for (const auto& loads : churn_sequence(8, 60, 5.0, 13)) {
    const MultiReschedule rw = warm.reschedule(loads);
    const MultiReschedule rc = cold.reschedule(loads);
    EXPECT_NEAR(rw.objective, rc.objective,
                kTol + rel_tol * (1.0 + std::fabs(rc.objective)));
    ASSERT_EQ(rw.rate.size(), loads.size());
    warm_used += rw.warm;
    EXPECT_FALSE(rc.warm);
  }
  EXPECT_GT(warm_used, 0);
}

TEST(MultiRescheduler, WarmMatchesColdWeightedSum) {
  check_warm_equals_cold(core::MultiObjective::WeightedSum, kTol);
}

TEST(MultiRescheduler, WarmMatchesColdMaxMin) {
  check_warm_equals_cold(core::MultiObjective::MaxMin, kTol);
}

TEST(MultiRescheduler, WarmMatchesColdPropFair) {
  // PropFair's round-1 vertex seeds the linearization point, so warm
  // and cold trajectories may converge from different degenerate
  // vertices of the same round-1 optimum — a small relative band on the
  // converged log objective instead of LP-exact equality.
  check_warm_equals_cold(core::MultiObjective::PropFair, 1e-4);
}

TEST(MultiRescheduler, SlotUniverseGrowsGeometricallyAndStaysCorrect) {
  const platform::Platform plat = test_platform(4, 7);
  MultiReschedulerOptions options;
  MultiLoadRescheduler sched(plat, options);

  // Ramp concurrency on ONE cluster 1 -> 12: each growth rebuilds the
  // slot LP; between growths arrivals are pure patches.
  std::vector<ActiveLoad> active;
  int slots_before = 0, rebuilds = 0;
  for (int i = 0; i < 12; ++i) {
    active.push_back({i, 0, 1.0});
    const MultiReschedule r = sched.reschedule(active);
    MultiLoadRescheduler fresh(plat, options);
    const MultiReschedule ref = fresh.reschedule(active);
    EXPECT_NEAR(r.objective, ref.objective, kTol * (1.0 + ref.objective));
    if (sched.slot_count() != slots_before) {
      ++rebuilds;
      slots_before = sched.slot_count();
    }
  }
  EXPECT_GE(sched.slot_count(), 12);
  // Geometric growth: far fewer rebuilds than arrivals.
  EXPECT_LE(rebuilds, 6);
}

TEST(MultiRescheduler, RejectsInvalidActiveSets) {
  const platform::Platform plat = test_platform(3, 9);
  MultiLoadRescheduler sched(plat, {});
  EXPECT_THROW((void)sched.reschedule({}), Error);
  EXPECT_THROW((void)sched.reschedule({{0, 0, 1.0}, {0, 1, 1.0}}), Error);
  EXPECT_THROW((void)sched.reschedule({{0, 7, 1.0}}), Error);
  EXPECT_THROW((void)sched.reschedule({{0, 0, 0.0}}), Error);
}

/// The ISSUE 8 churn satellite: a platform-event trace replayed under a
/// 4-load shared LP. At every event (load churn or platform change) the
/// warm-patched rescheduler must reach the optimum a cold solve of the
/// same mutated platform reaches.
TEST(MultiRescheduler, WarmPatchesTrackColdUnderPlatformEventTrace) {
  const platform::Platform base = test_platform(8, 47);

  // Capacity + failure/repair trace (the generators are deterministic
  // given the rng): bandwidth drift re-prices the matrix under the
  // capsule, link down/up reshapes routes.
  Rng trace_rng(101);
  dynamics::FailureRepairParams fparams;
  fparams.horizon = 40.0;
  fparams.link_mtbf = 30.0;
  fparams.mean_repair = 10.0;
  dynamics::DriftParams dparams;
  dparams.horizon = 40.0;
  const dynamics::EventTrace trace = dynamics::EventTrace::merge(
      dynamics::failure_repair_trace(base, fparams, trace_rng),
      dynamics::drift_trace(base, dparams, trace_rng));
  ASSERT_GT(trace.size(), 0);

  dynamics::DynamicPlatform dyn(base);
  MultiReschedulerOptions warm_opt;
  MultiReschedulerOptions cold_opt;
  cold_opt.warm = WarmPolicy::Never;
  // Both reschedulers watch the SAME DynamicPlatform instance.
  MultiLoadRescheduler warm(dyn.plat(), warm_opt), cold(dyn.plat(), cold_opt);

  // Four loads, one per distinct home cluster.
  std::vector<ActiveLoad> loads = {
      {0, 0, 1.0}, {1, 2, 0.7}, {2, 4, 1.3}, {3, 6, 1.0}};

  int warm_used = 0, events_checked = 0;
  Rng churn_rng(55);
  for (const dynamics::PlatformEvent& event : trace.events) {
    const dynamics::ChangeScope scope = dyn.apply(event);
    if (scope == dynamics::ChangeScope::Capacity) {
      warm.platform_capacity_changed();
      cold.platform_capacity_changed();
    } else if (scope == dynamics::ChangeScope::Topology) {
      warm.platform_topology_changed();
      cold.platform_topology_changed();
    }
    // Interleave load churn with the platform events: replace one load
    // every few events (fresh id, new home among present clusters).
    if (churn_rng.uniform(0.0, 1.0) < 0.3) {
      std::vector<int> present;
      for (int c = 0; c < 8; ++c)
        if (dyn.cluster_present(c)) present.push_back(c);
      ASSERT_FALSE(present.empty());
      const std::size_t slot = static_cast<std::size_t>(
          churn_rng.uniform_int(0, static_cast<std::int64_t>(loads.size()) - 1));
      loads[slot].id = 100 + events_checked;
      loads[slot].cluster = present[static_cast<std::size_t>(churn_rng.uniform_int(
          0, static_cast<std::int64_t>(present.size()) - 1))];
    }
    // Drop loads whose home cluster churned out (the engine aborts
    // those apps); skip the check when none survive.
    std::vector<ActiveLoad> active;
    for (const ActiveLoad& load : loads)
      if (dyn.cluster_present(load.cluster)) active.push_back(load);
    if (active.empty()) continue;

    const MultiReschedule rw = warm.reschedule(active);
    const MultiReschedule rc = cold.reschedule(active);
    EXPECT_NEAR(rw.objective, rc.objective,
                kTol * (1.0 + std::fabs(rc.objective)))
        << "event " << events_checked << " kind "
        << static_cast<int>(event.kind);
    warm_used += rw.warm;
    ++events_checked;
  }
  EXPECT_GT(events_checked, 10);
  EXPECT_GT(warm_used, 0);
}

}  // namespace
}  // namespace dls::online
