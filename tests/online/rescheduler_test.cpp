// Adaptive rescheduler: warm-started re-solves must match cold solves'
// objectives (the acceptance cross-check of ISSUE 2), the invalidation
// rules must hold, and the warm path must actually engage.
#include "online/rescheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "platform/generator.hpp"

namespace dls::online {
namespace {

constexpr double kTol = 1e-6;

platform::Platform test_platform(int k, std::uint64_t seed) {
  platform::GeneratorParams params;
  params.num_clusters = k;
  params.ensure_connected = true;
  Rng rng(seed);
  return generate_platform(params, rng);
}

/// Arrival/departure-like payoff sequence: one cluster flips per step.
std::vector<std::vector<double>> event_sequence(int k, int steps,
                                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> payoffs(static_cast<std::size_t>(k), 0.0);
  payoffs[0] = 1.0;
  std::vector<std::vector<double>> seq{payoffs};
  for (int s = 1; s < steps; ++s) {
    const std::size_t c = rng.index(static_cast<std::size_t>(k));
    payoffs[c] = payoffs[c] > 0.0 ? 0.0 : rng.uniform(0.5, 1.5);
    // Keep at least one application active.
    bool any = false;
    for (double p : payoffs) any |= p > 0.0;
    if (!any) payoffs[c] = 1.0;
    seq.push_back(payoffs);
  }
  return seq;
}

/// The acceptance cross-check: for every event in the sequence, the
/// warm-started reschedule reaches the same objective as a cold solve
/// of the identical instance. Exact (rel_tol ~ 0) for the LP bound —
/// warm and cold run the same solver to optimality on the same model.
/// The rounding heuristics inherit the LP *value* but not the vertex:
/// degenerate optima can round to slightly different valid allocations,
/// so LPR gets a small relative band instead of equality.
void check_warm_equals_cold(Method method, core::Objective objective,
                            double rel_tol) {
  const platform::Platform plat = test_platform(10, 21);
  ReschedulerOptions warm_opt;
  warm_opt.method = method;
  warm_opt.objective = objective;
  warm_opt.warm = WarmPolicy::Auto;
  ReschedulerOptions cold_opt = warm_opt;
  cold_opt.warm = WarmPolicy::Never;
  AdaptiveRescheduler warm(plat, warm_opt), cold(plat, cold_opt);
  int warm_used = 0;
  for (const auto& payoffs : event_sequence(10, 60, 5)) {
    const Reschedule rw = warm.reschedule(payoffs);
    const Reschedule rc = cold.reschedule(payoffs);
    EXPECT_NEAR(rw.objective, rc.objective,
                kTol + rel_tol * (1.0 + rc.objective));
    warm_used += rw.warm;
    EXPECT_FALSE(rc.warm);
  }
  EXPECT_GT(warm_used, 0);
}

TEST(Rescheduler, WarmMatchesColdObjectiveLpBoundSum) {
  check_warm_equals_cold(Method::LpBound, core::Objective::Sum, kTol);
}

TEST(Rescheduler, WarmMatchesColdObjectiveLpBoundMaxMin) {
  check_warm_equals_cold(Method::LpBound, core::Objective::MaxMin, kTol);
}

TEST(Rescheduler, LprWarmStaysValidWhileLpValueMatchesCold) {
  // LPR rounds the LP vertex down, and degenerate optima have several
  // vertices, so warm and cold LPR allocations (and their objectives)
  // may legitimately differ by the rounding loss. What must hold on
  // every event: both allocations are valid, and both are bounded by
  // the LP relaxation value, which IS vertex-independent (the LpBound
  // equality tests above pin that down).
  const platform::Platform plat = test_platform(10, 21);
  ReschedulerOptions warm_opt;
  warm_opt.method = Method::Lpr;
  warm_opt.objective = core::Objective::Sum;
  ReschedulerOptions cold_opt = warm_opt;
  cold_opt.warm = WarmPolicy::Never;
  AdaptiveRescheduler warm(plat, warm_opt), cold(plat, cold_opt);
  const core::SteadyStateProblem base(plat, std::vector<double>(10, 1.0),
                                      core::Objective::Sum);
  int warm_used = 0;
  for (const auto& payoffs : event_sequence(10, 40, 5)) {
    const Reschedule rw = warm.reschedule(payoffs);
    const Reschedule rc = cold.reschedule(payoffs);
    const auto problem = base.with_payoffs(payoffs);
    EXPECT_TRUE(core::validate_allocation(problem, rw.allocation).ok);
    EXPECT_TRUE(core::validate_allocation(problem, rc.allocation).ok);
    const double bound = core::lp_upper_bound(problem).objective;
    EXPECT_LE(rw.objective, bound + kTol * (1.0 + bound));
    EXPECT_LE(rc.objective, bound + kTol * (1.0 + bound));
    warm_used += rw.warm;
  }
  EXPECT_GT(warm_used, 0);
}

TEST(Rescheduler, WarmEngagesAndSavesPivotsUnderSum) {
  const platform::Platform plat = test_platform(12, 23);
  ReschedulerOptions warm_opt;
  warm_opt.method = Method::LpBound;
  warm_opt.objective = core::Objective::Sum;
  ReschedulerOptions cold_opt = warm_opt;
  cold_opt.warm = WarmPolicy::Never;
  AdaptiveRescheduler warm(plat, warm_opt), cold(plat, cold_opt);
  for (const auto& payoffs : event_sequence(12, 80, 7)) {
    (void)warm.reschedule(payoffs);
    (void)cold.reschedule(payoffs);
  }
  const auto& ws = warm.stats();
  const auto& cs = cold.stats();
  // Under Sum the model never reshapes, so after the first (cold) solve
  // every event warm-starts.
  EXPECT_EQ(ws.cold_solves, 1);
  EXPECT_EQ(ws.warm_solves, 79);
  EXPECT_EQ(cs.warm_solves, 0);
  // The whole point: the warm path re-optimizes in far fewer pivots.
  EXPECT_LT(ws.warm_iterations * 2, cs.cold_iterations);
}

TEST(Rescheduler, MaxMinReshapesSoWarmOnlySurvivesSameActiveCount) {
  const platform::Platform plat = test_platform(8, 29);
  ReschedulerOptions opt;
  opt.method = Method::LpBound;
  opt.objective = core::Objective::MaxMin;
  AdaptiveRescheduler sched(plat, opt);
  std::vector<double> payoffs(8, 0.0);
  payoffs[0] = payoffs[1] = 1.0;
  (void)sched.reschedule(payoffs);
  // Arrival: active count 2 -> 3 reshapes the MaxMin model (one more
  // fairness row); neither the capsule nor a basis repair fits the new
  // shape, so this solves cold.
  payoffs[2] = 1.0;
  EXPECT_FALSE(sched.reschedule(payoffs).warm);
  // Payoff value change at the same support: same shape but the MaxMin
  // fairness rows embed the payoff *values*, so the matrix fingerprint
  // no longer matches. The rescheduler's basis-repair path (see
  // lp::SimplexOptions::warm_repair) refactorizes the carried statuses
  // against the re-priced matrix instead of starting cold.
  payoffs[2] = 1.2;
  {
    const Reschedule r = sched.reschedule(payoffs);
    EXPECT_TRUE(r.warm);
    EXPECT_TRUE(r.repaired);
  }
  // Identical payoffs again: identical matrix, capsule restored whole.
  {
    const Reschedule r = sched.reschedule(payoffs);
    EXPECT_TRUE(r.warm);
    EXPECT_FALSE(r.repaired);
  }
}

TEST(Rescheduler, SupportChangeRuleForcesCold) {
  const platform::Platform plat = test_platform(10, 31);
  ReschedulerOptions opt;
  opt.method = Method::LpBound;
  opt.objective = core::Objective::Sum;
  opt.max_support_change = 2;
  AdaptiveRescheduler sched(plat, opt);
  std::vector<double> payoffs(10, 1.0);
  (void)sched.reschedule(payoffs);
  // Three clusters drain at once: beyond the rule-1 budget, so cold.
  payoffs[0] = payoffs[1] = payoffs[2] = 0.0;
  EXPECT_FALSE(sched.reschedule(payoffs).warm);
  // One flip: within budget, warm.
  payoffs[0] = 1.0;
  EXPECT_TRUE(sched.reschedule(payoffs).warm);
}

TEST(Rescheduler, GreedyAutoStaysColdAlwaysSeeds) {
  const platform::Platform plat = test_platform(9, 37);
  ReschedulerOptions opt;
  opt.method = Method::Greedy;
  opt.objective = core::Objective::MaxMin;
  AdaptiveRescheduler auto_sched(plat, opt);
  opt.warm = WarmPolicy::Always;
  AdaptiveRescheduler seeded_sched(plat, opt);
  const core::SteadyStateProblem base(plat, std::vector<double>(9, 1.0),
                                      core::Objective::MaxMin);
  for (const auto& payoffs : event_sequence(9, 30, 11)) {
    const Reschedule a = auto_sched.reschedule(payoffs);
    const Reschedule s = seeded_sched.reschedule(payoffs);
    EXPECT_FALSE(a.warm);  // greedy has no LP phase to skip under Auto
    // Both must produce valid allocations for the instance.
    const auto problem = base.with_payoffs(payoffs);
    EXPECT_TRUE(core::validate_allocation(problem, a.allocation).ok);
    EXPECT_TRUE(core::validate_allocation(problem, s.allocation).ok);
  }
  EXPECT_GT(seeded_sched.stats().warm_solves, 0);
}

TEST(Rescheduler, RejectsAllZeroPayoffs) {
  const platform::Platform plat = test_platform(4, 41);
  AdaptiveRescheduler sched(plat, {});
  EXPECT_THROW((void)sched.reschedule(std::vector<double>(4, 0.0)), Error);
}

TEST(Rescheduler, ResetDropsWarmState) {
  const platform::Platform plat = test_platform(8, 43);
  ReschedulerOptions opt;
  opt.method = Method::LpBound;
  opt.objective = core::Objective::Sum;
  AdaptiveRescheduler sched(plat, opt);
  std::vector<double> payoffs(8, 1.0);
  (void)sched.reschedule(payoffs);
  EXPECT_TRUE(sched.reschedule(payoffs).warm);
  sched.reset();
  EXPECT_FALSE(sched.reschedule(payoffs).warm);
}

TEST(Rescheduler, PlatformCapacityChangeWarmRepairsToColdOptimum) {
  platform::Platform plat = test_platform(8, 43);
  ReschedulerOptions opt;
  opt.method = Method::LpBound;
  opt.objective = core::Objective::Sum;
  AdaptiveRescheduler sched(plat, opt);
  const std::vector<double> payoffs(8, 1.0);
  (void)sched.reschedule(payoffs);

  // A bandwidth cut re-prices matrix coefficients: the capsule cannot
  // restore whole, but the repair path keeps the solve warm and its
  // objective must match a from-scratch solve on the mutated platform.
  plat.set_link_bandwidth(0, plat.link(0).bw * 0.5);
  sched.platform_capacity_changed();
  const Reschedule repaired = sched.reschedule(payoffs);
  EXPECT_TRUE(repaired.warm);
  EXPECT_TRUE(repaired.repaired);

  AdaptiveRescheduler fresh(plat, opt);
  EXPECT_NEAR(repaired.objective, fresh.reschedule(payoffs).objective, kTol);
  EXPECT_EQ(sched.stats().repaired_solves, 1);

  // A pure rhs move (max-connect) keeps the fingerprint: the capsule
  // restores whole, no repair involved.
  plat.set_link_max_connections(0, plat.link(0).max_connections / 2 + 1);
  sched.platform_capacity_changed();
  const Reschedule whole = sched.reschedule(payoffs);
  EXPECT_TRUE(whole.warm);
  EXPECT_FALSE(whole.repaired);
  AdaptiveRescheduler fresh2(plat, opt);
  EXPECT_NEAR(whole.objective, fresh2.reschedule(payoffs).objective, kTol);
}

TEST(Rescheduler, PlatformTopologyChangeForcesColdSolve) {
  platform::Platform plat = test_platform(8, 47);
  ReschedulerOptions opt;
  opt.method = Method::LpBound;
  opt.objective = core::Objective::Sum;
  AdaptiveRescheduler sched(plat, opt);
  const std::vector<double> payoffs(8, 1.0);
  (void)sched.reschedule(payoffs);

  (void)plat.set_link_up(0, false);  // route set changes, model reshapes
  sched.platform_topology_changed();
  const Reschedule r = sched.reschedule(payoffs);
  EXPECT_FALSE(r.warm);
  EXPECT_FALSE(r.repaired);
  AdaptiveRescheduler fresh(plat, opt);
  EXPECT_NEAR(r.objective, fresh.reschedule(payoffs).objective, kTol);
  // The cold solve refreshed the capsule: the next event is warm again.
  EXPECT_TRUE(sched.reschedule(payoffs).warm);
}

}  // namespace
}  // namespace dls::online
