#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "support/error.hpp"

namespace dls {
namespace {

TEST(ThreadPool, RunsSubmittedJobs) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] { ++counter; });
  pool.wait();
  pool.submit([&] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  pool.submit([] { throw Error("boom"); });
  EXPECT_THROW(pool.wait(), Error);
  // The pool remains usable afterwards.
  std::atomic<int> counter{0};
  pool.submit([&] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, RejectsEmptyJob) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit({}), Error);
}

TEST(ParallelFor, CoversWholeRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 5, 5, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, ComputesSum) {
  ThreadPool pool(3);
  std::vector<long> values(10000);
  parallel_for(pool, 0, values.size(),
               [&](std::size_t i) { values[i] = static_cast<long>(i); });
  const long total = std::accumulate(values.begin(), values.end(), 0L);
  EXPECT_EQ(total, 10000L * 9999 / 2);
}

TEST(ParallelFor, EveryChunkSizeCoversTheRangeExactlyOnce) {
  ThreadPool pool(4);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{64}, std::size_t{5000}}) {
    std::vector<std::atomic<int>> hits(1000);
    parallel_for(pool, 0, hits.size(), [&](std::size_t i) { ++hits[i]; }, chunk);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "chunk " << chunk;
  }
}

TEST(ParallelFor, NonZeroRangeStart) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(100);
  parallel_for(pool, 40, hits.size(), [&](std::size_t i) { ++hits[i]; }, 7);
  for (std::size_t i = 0; i < hits.size(); ++i)
    EXPECT_EQ(hits[i].load(), i >= 40 ? 1 : 0);
}

TEST(ParallelFor, DynamicScheduleDrainsSkewAcrossWorkers) {
  // One index is vastly more expensive than the rest. With dynamic
  // pull the other workers must process (nearly) everything else while
  // the slow index runs; here we just assert full coverage and that the
  // slow index did not serialize the whole range behind it.
  ThreadPool pool(4);
  std::atomic<int> done{0};
  std::atomic<int> done_before_slow_finished{0};
  parallel_for(
      pool, 0, 200,
      [&](std::size_t i) {
        if (i == 0) {
          // Busy-wait until most other indices finished (dynamic
          // scheduling lets them proceed on the other workers).
          while (done.load() < 150) std::this_thread::yield();
          done_before_slow_finished = done.load();
        }
        ++done;
      },
      1);
  EXPECT_EQ(done.load(), 200);
  EXPECT_GE(done_before_slow_finished.load(), 150);
}

TEST(ParallelFor, PropagatesBodyException) {
  ThreadPool pool(3);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [&](std::size_t i) {
                              if (i == 42) throw Error("boom");
                            },
                            1),
               Error);
}

TEST(ParallelForStatic, CoversWholeRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(997);
  parallel_for_static(pool, 0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  parallel_for_static(pool, 5, 5, [](std::size_t) { FAIL(); });
}

}  // namespace
}  // namespace dls
