#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "support/error.hpp"

namespace dls {
namespace {

TEST(ThreadPool, RunsSubmittedJobs) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] { ++counter; });
  pool.wait();
  pool.submit([&] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  pool.submit([] { throw Error("boom"); });
  EXPECT_THROW(pool.wait(), Error);
  // The pool remains usable afterwards.
  std::atomic<int> counter{0};
  pool.submit([&] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, RejectsEmptyJob) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit({}), Error);
}

TEST(ParallelFor, CoversWholeRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 5, 5, [](std::size_t) { FAIL(); });
}

TEST(ParallelFor, ComputesSum) {
  ThreadPool pool(3);
  std::vector<long> values(10000);
  parallel_for(pool, 0, values.size(),
               [&](std::size_t i) { values[i] = static_cast<long>(i); });
  const long total = std::accumulate(values.begin(), values.end(), 0L);
  EXPECT_EQ(total, 10000L * 9999 / 2);
}

}  // namespace
}  // namespace dls
