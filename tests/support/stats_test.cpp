#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/error.hpp"

namespace dls {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

TEST(Accumulator, EmptyMinMaxAreNaNNotFabricatedZeros) {
  // Regression: an empty accumulator used to report min() == max() == 0,
  // which downstream tables printed as if an application had completed
  // instantly. The extrema of nothing are NaN; callers render "-".
  Accumulator acc;
  EXPECT_TRUE(std::isnan(acc.min()));
  EXPECT_TRUE(std::isnan(acc.max()));
  acc.add(-3.0);
  EXPECT_EQ(acc.min(), -3.0);
  EXPECT_EQ(acc.max(), -3.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(4.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_EQ(acc.mean(), 4.0);
  EXPECT_EQ(acc.stddev(), 0.0);
  EXPECT_EQ(acc.min(), 4.0);
  EXPECT_EQ(acc.max(), 4.0);
}

TEST(Accumulator, KnownMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), 2.13809, 1e-4);  // sample stddev
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), 1.29099, 1e-4);
  EXPECT_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, Percentiles) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
}

TEST(Stats, PercentileValidation) {
  EXPECT_THROW(percentile(std::vector<double>{}, 50), Error);
  EXPECT_THROW(percentile(std::vector<double>{1.0}, 101), Error);
}

TEST(P2Quantile, ExactForSmallSamples) {
  P2Quantile q(0.5);
  EXPECT_TRUE(std::isnan(q.value()));
  q.add(30.0);
  EXPECT_DOUBLE_EQ(q.value(), 30.0);
  q.add(10.0);
  EXPECT_DOUBLE_EQ(q.value(), 20.0);
  q.add(20.0);
  // n <= 5 is exact and matches percentile()'s interpolation.
  EXPECT_DOUBLE_EQ(q.value(), percentile(std::vector<double>{10, 20, 30}, 50));
  q.add(40.0);
  q.add(50.0);
  EXPECT_DOUBLE_EQ(q.value(),
                   percentile(std::vector<double>{10, 20, 30, 40, 50}, 50));
}

TEST(P2Quantile, TracksLargeStreamsApproximately) {
  // Deterministic pseudo-uniform stream: the P^2 markers must land near
  // the exact percentiles without storing the observations.
  std::vector<double> xs;
  double state = 0.3;
  for (int i = 0; i < 20000; ++i) {
    state = state * 997.0 + 0.1234567;
    state -= std::floor(state);
    xs.push_back(state);
  }
  for (const double p : {0.5, 0.95}) {
    P2Quantile q(p);
    for (const double x : xs) q.add(x);
    EXPECT_EQ(q.count(), xs.size());
    const double exact = percentile(xs, 100.0 * p);
    EXPECT_NEAR(q.value(), exact, 0.02) << "p=" << p;
  }
}

TEST(P2Quantile, IsAPureFunctionOfTheInsertionSequence) {
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(std::sin(i * 12.9898) * 43758.5453);
  P2Quantile a(0.95), b(0.95);
  for (const double x : xs) a.add(x);
  for (const double x : xs) b.add(x);
  EXPECT_EQ(a.value(), b.value());
}

TEST(P2Quantile, RejectsBadInputs) {
  EXPECT_THROW(P2Quantile(0.0), Error);
  EXPECT_THROW(P2Quantile(1.0), Error);
  P2Quantile q(0.5);
  EXPECT_THROW(q.add(std::nan("")), Error);
}

}  // namespace
}  // namespace dls
