#include "support/rational.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace dls {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.num(), 0);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, NormalizesToLowestTerms) {
  Rational r(6, 8);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 4);
}

TEST(Rational, NormalizesSignToDenominator) {
  Rational r(3, -4);
  EXPECT_EQ(r.num(), -3);
  EXPECT_EQ(r.den(), 4);
  Rational s(-3, -4);
  EXPECT_EQ(s.num(), 3);
  EXPECT_EQ(s.den(), 4);
}

TEST(Rational, ZeroDenominatorThrows) {
  EXPECT_THROW(Rational(1, 0), Error);
}

TEST(Rational, ZeroNumeratorCanonical) {
  Rational r(0, 42);
  EXPECT_EQ(r.den(), 1);
}

TEST(Rational, Addition) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) + Rational(-1, 2), Rational(0));
}

TEST(Rational, Subtraction) {
  EXPECT_EQ(Rational(3, 4) - Rational(1, 4), Rational(1, 2));
}

TEST(Rational, Multiplication) {
  EXPECT_EQ(Rational(2, 3) * Rational(9, 4), Rational(3, 2));
}

TEST(Rational, Division) {
  EXPECT_EQ(Rational(2, 3) / Rational(4, 3), Rational(1, 2));
  EXPECT_THROW(Rational(1) / Rational(0), Error);
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).to_double(), 0.25);
  EXPECT_DOUBLE_EQ(Rational(-3, 2).to_double(), -1.5);
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(5).to_string(), "5");
  EXPECT_EQ(Rational(-7, 3).to_string(), "-7/3");
}

TEST(Rational, ImplicitIntegerLift) {
  Rational r = 7;
  EXPECT_EQ(r, Rational(7, 1));
}

TEST(Rational, AdditionAvoidsSpuriousOverflow) {
  // Cross-reduction keeps a/b + c/b well within range even when b is huge.
  const std::int64_t big = 1'000'000'007LL * 4;
  Rational a(1, big), b(3, big);
  EXPECT_EQ(a + b, Rational(4, big));
}

TEST(Rational, OverflowDetected) {
  const std::int64_t big = std::numeric_limits<std::int64_t>::max() / 2 + 1;
  Rational a(big, 1);
  EXPECT_THROW(a + a, Error);
  EXPECT_THROW(Rational(big, 3) * Rational(big, 5), Error);
}

TEST(Gcd64, Basics) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(gcd64(7, 13), 1);
}

TEST(Lcm64, Basics) {
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(0, 5), 0);
  EXPECT_EQ(lcm64(7, 13), 91);
}

TEST(Lcm64, OverflowDetected) {
  const std::int64_t big = (1LL << 62) + 1;  // == 2 (mod 3), so coprime with 3
  EXPECT_THROW(lcm64(big, 3), Error);
}

}  // namespace
}  // namespace dls
