// Mergeable-aggregate tests: Accumulator::merge must reproduce the
// sequential stream exactly (count/sum/min/max) or up to reassociation
// (mean/M2) for any partition and any merge order; P2Quantile::merge is
// approximate by construction and is held to a tolerance against the
// sequential estimator. State round-trips must be bit-exact — the
// checkpoint format depends on it.
#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "support/error.hpp"

namespace dls {
namespace {

std::vector<double> lognormal_samples(std::size_t n, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::lognormal_distribution<double> dist(0.0, 1.0);
  std::vector<double> xs(n);
  for (double& x : xs) x = dist(rng);
  return xs;
}

TEST(AccumulatorMerge, MatchesSequentialStreamForAnyPartition) {
  const std::vector<double> xs = lognormal_samples(1000, 42);
  Accumulator whole;
  for (const double x : xs) whole.add(x);

  for (const std::size_t cut : {std::size_t{0}, std::size_t{1},
                                std::size_t{500}, std::size_t{999},
                                std::size_t{1000}}) {
    Accumulator left, right;
    for (std::size_t i = 0; i < cut; ++i) left.add(xs[i]);
    for (std::size_t i = cut; i < xs.size(); ++i) right.add(xs[i]);
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count()) << "cut " << cut;
    EXPECT_EQ(left.min(), whole.min()) << "cut " << cut;   // exact
    EXPECT_EQ(left.max(), whole.max()) << "cut " << cut;   // exact
    EXPECT_NEAR(left.sum(), whole.sum(), 1e-9 * std::abs(whole.sum()));
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-12 * std::abs(whole.mean()));
    EXPECT_NEAR(left.stddev(), whole.stddev(),
                1e-10 * std::abs(whole.stddev()));
  }
}

TEST(AccumulatorMerge, OrderInvariant) {
  const std::vector<double> xs = lognormal_samples(300, 7);
  // Three shards merged in both association orders.
  Accumulator a, b, c;
  for (std::size_t i = 0; i < 100; ++i) a.add(xs[i]);
  for (std::size_t i = 100; i < 200; ++i) b.add(xs[i]);
  for (std::size_t i = 200; i < 300; ++i) c.add(xs[i]);

  Accumulator ab = a;
  ab.merge(b);
  ab.merge(c);
  Accumulator bc = b;
  bc.merge(c);
  bc.merge(a);
  EXPECT_EQ(ab.count(), bc.count());
  EXPECT_EQ(ab.min(), bc.min());
  EXPECT_EQ(ab.max(), bc.max());
  EXPECT_NEAR(ab.mean(), bc.mean(), 1e-12 * std::abs(ab.mean()));
  EXPECT_NEAR(ab.stddev(), bc.stddev(), 1e-10 * std::abs(ab.stddev()));
}

TEST(AccumulatorMerge, EmptySidesAreIdentities) {
  Accumulator filled;
  filled.add(3.0);
  filled.add(-1.0);
  const Accumulator snapshot = filled;

  Accumulator empty;
  filled.merge(empty);  // right identity
  EXPECT_EQ(filled.count(), snapshot.count());
  EXPECT_EQ(filled.mean(), snapshot.mean());
  EXPECT_EQ(filled.min(), snapshot.min());

  Accumulator target;
  target.merge(snapshot);  // left identity: adopts the other state
  EXPECT_EQ(target.count(), snapshot.count());
  EXPECT_EQ(target.mean(), snapshot.mean());
  EXPECT_EQ(target.max(), snapshot.max());

  Accumulator both_empty, other_empty;
  both_empty.merge(other_empty);
  EXPECT_EQ(both_empty.count(), 0u);
  EXPECT_TRUE(std::isnan(both_empty.min()));
}

TEST(AccumulatorState, RoundTripsBitExact) {
  const std::vector<double> xs = lognormal_samples(137, 3);
  Accumulator acc;
  for (const double x : xs) acc.add(x);
  const Accumulator restored = Accumulator::from_state(acc.state());
  EXPECT_EQ(restored.count(), acc.count());
  EXPECT_EQ(restored.mean(), acc.mean());
  EXPECT_EQ(restored.stddev(), acc.stddev());
  EXPECT_EQ(restored.min(), acc.min());
  EXPECT_EQ(restored.max(), acc.max());
  EXPECT_EQ(restored.sum(), acc.sum());
  // And the restored accumulator keeps streaming identically.
  Accumulator a = acc, b = restored;
  a.add(0.25);
  b.add(0.25);
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.stddev(), b.stddev());
}

TEST(P2QuantileMerge, SmallSidesReplayExactly) {
  // Both sides <= 5 observations: raw samples are replayed, so the
  // merge equals feeding the concatenation to one estimator.
  P2Quantile whole(0.5);
  P2Quantile left(0.5), right(0.5);
  const std::vector<double> a = {3.0, 1.0, 4.0};
  const std::vector<double> b = {1.0, 5.0};
  for (const double x : a) {
    whole.add(x);
    left.add(x);
  }
  for (const double x : b) {
    whole.add(x);
    right.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_DOUBLE_EQ(left.value(), whole.value());
}

TEST(P2QuantileMerge, ApproximatesSequentialStream) {
  const std::vector<double> xs = lognormal_samples(4000, 11);
  for (const double q : {0.5, 0.95}) {
    P2Quantile whole(q);
    for (const double x : xs) whole.add(x);

    for (const std::size_t shards : {std::size_t{2}, std::size_t{7}}) {
      P2Quantile merged(q);
      for (std::size_t s = 0; s < shards; ++s) {
        P2Quantile part(q);
        for (std::size_t i = s; i < xs.size(); i += shards) part.add(xs[i]);
        merged.merge(part);
      }
      EXPECT_EQ(merged.count(), whole.count());
      // P^2 keeps five markers per side, so merging reconstructs the
      // quantile from a 10-point mixture CDF: on a heavy-tailed stream
      // the p95 lands within ~10% of the sequential estimate, not
      // closer. The merge is a progress/integrity view, never the
      // report path (that folds raw cases in order), so 15% is the
      // honest contract to pin down.
      EXPECT_NEAR(merged.value(), whole.value(),
                  0.15 * std::abs(whole.value()))
          << "q=" << q << " shards=" << shards;
    }
  }
}

TEST(P2QuantileState, RoundTripsBitExact) {
  const std::vector<double> xs = lognormal_samples(200, 5);
  P2Quantile p95(0.95);
  for (const double x : xs) p95.add(x);
  P2Quantile restored = P2Quantile::from_state(p95.state());
  EXPECT_EQ(restored.count(), p95.count());
  EXPECT_EQ(restored.quantile(), p95.quantile());
  EXPECT_EQ(restored.value(), p95.value());
  // Streaming continues bit-identically after restore — the checkpoint
  // resume path folds more cases into restored markers.
  P2Quantile a = p95;
  for (const double x : lognormal_samples(50, 6)) {
    a.add(x);
    restored.add(x);
  }
  EXPECT_EQ(restored.value(), a.value());
}

TEST(P2QuantileMerge, RejectsMismatchedQuantiles) {
  P2Quantile p50(0.5), p95(0.95);
  p50.add(1.0);
  p95.add(2.0);
  EXPECT_THROW(p50.merge(p95), Error);
}

}  // namespace
}  // namespace dls
