#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/error.hpp"

namespace dls {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t({"K", "ratio"});
  t.add_row({"5", "0.91"});
  t.add_row({"95", "0.99"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("K"), std::string::npos);
  EXPECT_NE(out.find("0.99"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), Error);
}

TEST(TextTable, FormatsDoubles) {
  EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::fmt(2.0, 0), "2");
}

TEST(TextTable, CsvEscaping) {
  TextTable t({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "name,value\n\"with,comma\",\"with\"\"quote\"\n");
}

TEST(TextTable, RowCount) {
  TextTable t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  EXPECT_EQ(t.rows(), 1u);
}

}  // namespace
}  // namespace dls
