#include "support/rationalize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"

namespace dls {
namespace {

TEST(Rationalize, ExactSmallFractions) {
  EXPECT_EQ(rationalize(0.5, 10), Rational(1, 2));
  EXPECT_EQ(rationalize(0.25, 10), Rational(1, 4));
  EXPECT_EQ(rationalize(-0.75, 10), Rational(-3, 4));
  EXPECT_EQ(rationalize(3.0, 10), Rational(3));
  EXPECT_EQ(rationalize(0.0, 10), Rational(0));
}

TEST(Rationalize, PiConvergents) {
  // Classical continued-fraction convergents of pi.
  EXPECT_EQ(rationalize(M_PI, 10), Rational(22, 7));
  EXPECT_EQ(rationalize(M_PI, 200), Rational(355, 113));
}

TEST(Rationalize, RespectsDenominatorBound) {
  Rng rng(42);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(-100.0, 100.0);
    const std::int64_t max_den = rng.uniform_int(1, 5000);
    const Rational r = rationalize(x, max_den);
    EXPECT_LE(r.den(), max_den);
    EXPECT_GE(r.den(), 1);
    // Best approximations are at least within 1/max_den of the target.
    EXPECT_LE(std::fabs(r.to_double() - x), 1.0 / static_cast<double>(max_den));
  }
}

TEST(Rationalize, BestAmongDenominatorBound) {
  // Exhaustive cross-check against all fractions with den <= bound.
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0.0, 3.0);
    const std::int64_t max_den = rng.uniform_int(1, 40);
    const Rational r = rationalize(x, max_den);
    const double err = std::fabs(r.to_double() - x);
    for (std::int64_t q = 1; q <= max_den; ++q) {
      const double p = std::round(x * static_cast<double>(q));
      const double cand = std::fabs(p / static_cast<double>(q) - x);
      EXPECT_LE(err, cand + 1e-12) << "x=" << x << " den bound=" << max_den
                                   << " beaten by " << p << "/" << q;
    }
  }
}

TEST(RationalizeFloor, NeverRoundsUp) {
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(0.0, 50.0);
    const std::int64_t max_den = rng.uniform_int(1, 1000);
    const Rational r = rationalize_floor(x, max_den);
    EXPECT_LE(r.to_double(), x + 1e-15);
    EXPECT_GE(r.to_double(), x - 2.0 / static_cast<double>(max_den));
  }
}

TEST(Rationalize, InvalidInputs) {
  EXPECT_THROW(rationalize(std::nan(""), 10), Error);
  EXPECT_THROW(rationalize(1.0, 0), Error);
}

}  // namespace
}  // namespace dls
