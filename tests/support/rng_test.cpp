#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace dls {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform(10.0, 20.0);
    EXPECT_GE(x, 10.0);
    EXPECT_LT(x, 20.0);
  }
  EXPECT_THROW(rng.uniform(2.0, 1.0), Error);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntUnbiasedRoughly) {
  Rng rng(21);
  std::array<int, 3> counts{};
  const int n = 90000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(0, 2)];
  for (int c : counts) EXPECT_NEAR(c, n / 3, n / 60);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(37);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, IndexBounds) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(10), 10u);
  EXPECT_THROW(rng.index(0), Error);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(55);
  Rng child = parent.split();
  // The child stream should not replay the parent stream.
  Rng parent_again(55);
  parent_again.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += child.next_u64() == parent.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(77), b(77);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

}  // namespace
}  // namespace dls
