// Wire-protocol tests: frame encode/decode across arbitrary TCP chunk
// boundaries, bit-exact double round trips, and rejection of malformed
// or oversized length prefixes.
#include "dist/protocol.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace dls::dist {
namespace {

TEST(Frames, RoundTripIncludingEmbeddedNewlines) {
  const std::vector<std::string> payloads = {
      "HELLO 1", "", "DONE 3 8\nsum 0 1 2 0x1p+0 0x0p+0 0x1p+0 0x1p+0 0x1p+1",
      std::string(1000, 'x')};
  std::string stream;
  for (const std::string& p : payloads) stream += encode_frame(p);

  FrameReader reader;
  reader.feed(stream.data(), stream.size());
  for (const std::string& expected : payloads) {
    const auto got = reader.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, expected);
  }
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(Frames, ChunkBoundariesAreInvisible) {
  // Feed the same stream one byte at a time — TCP segmentation must
  // never change what next() yields.
  const std::vector<std::string> payloads = {"RANGE 0 0 8", "PING",
                                             "CASE 0 3 2 0x1p-1 nan"};
  std::string stream;
  for (const std::string& p : payloads) stream += encode_frame(p);

  FrameReader reader;
  std::vector<std::string> decoded;
  for (const char c : stream) {
    reader.feed(&c, 1);
    while (auto payload = reader.next()) decoded.push_back(*payload);
  }
  EXPECT_EQ(decoded, payloads);
}

TEST(Frames, MalformedLengthPrefixThrows) {
  FrameReader reader;
  const std::string junk = "not-a-number\nrest";
  reader.feed(junk.data(), junk.size());
  EXPECT_THROW((void)reader.next(), Error);

  FrameReader oversized;
  const std::string huge = "999999999999\n";
  oversized.feed(huge.data(), huge.size());
  EXPECT_THROW((void)oversized.next(), Error);
}

TEST(Frames, HeaderWithoutNewlineIsBounded) {
  // A peer that never sends a newline must not grow the buffer forever.
  FrameReader reader;
  const std::string digits(100, '7');
  reader.feed(digits.data(), digits.size());
  EXPECT_THROW((void)reader.next(), Error);
}

TEST(Doubles, RoundTripBitExact) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.0 / 3.0,
                           1e308,
                           5e-324,  // min subnormal
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::epsilon(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()};
  for (const double v : values) {
    const double back = decode_double(encode_double(v));
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0) << encode_double(v);
  }
  EXPECT_TRUE(std::isnan(decode_double(encode_double(
      std::numeric_limits<double>::quiet_NaN()))));
}

TEST(Doubles, RejectsGarbage) {
  EXPECT_THROW((void)decode_double(""), Error);
  EXPECT_THROW((void)decode_double("0x1p+1junk"), Error);
  EXPECT_THROW((void)decode_double("NaN?"), Error);
}

TEST(Hex64, RoundTripsAndRejects) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{0xdeadbeef},
        std::uint64_t{0xffffffffffffffffULL}}) {
    EXPECT_EQ(decode_hex64(encode_hex64(v)), v);
  }
  EXPECT_THROW((void)decode_hex64(""), Error);
  EXPECT_THROW((void)decode_hex64("xyz"), Error);
  EXPECT_THROW((void)decode_hex64("00000000000000001"), Error);  // 17 digits
}

TEST(Tokens, SplitsOnBlanks) {
  const std::vector<std::string> expected = {"CASE", "1", "2"};
  EXPECT_EQ(split_tokens("  CASE  1\t2 "), expected);
  EXPECT_TRUE(split_tokens("").empty());
}

}  // namespace
}  // namespace dls::dist
