// Distributed-execution loopback tests: an in-process coordinator and
// worker fleet over 127.0.0.1 on an ephemeral port. The load-bearing
// assertion throughout is the tentpole invariant — the distributed
// report is BIT-identical (same JSON bytes) to the single-process
// runner for any worker count, death schedule, and resume point.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <future>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/spec.hpp"
#include "dist/coordinator.hpp"
#include "dist/worker.hpp"
#include "support/error.hpp"

namespace dls::dist {
namespace {

using campaign::CampaignReport;
using campaign::ScenarioSpec;

/// Offline sweep + online stream + dynamics replay over two platform
/// cells — every case kind in one matrix (mirrors the runner tests).
ScenarioSpec mixed_spec() {
  return campaign::from_text(
      "dls-campaign 1\n"
      "name mixed\n"
      "seed 7\n"
      "replications 2\n"
      "objective maxmin sum\n"
      "method g lprg\n"
      "platform generate clusters=5 connectivity=0.6 connected=1\n"
      "platform grid clusters=4\n"
      "workload none\n"
      "workload poisson arrivals=12 rate=1 mean-load=300\n"
      "dynamics scenario event-rate=0.1 severity=0.5\n");
}

std::string report_json(const CampaignReport& report) {
  std::ostringstream os;
  campaign::write_report_json(report, os);
  return os.str();
}

std::string single_process_json(const ScenarioSpec& spec) {
  return report_json(campaign::run_campaign(spec, {.jobs = 2}));
}

struct DistOutcome {
  std::optional<CoordinatorResult> result;
  std::exception_ptr coordinator_error;
  std::vector<WorkerResult> workers;
  std::vector<std::exception_ptr> worker_errors;
};

/// Runs the coordinator on this thread and each worker on its own,
/// wiring the ephemeral port through on_listen. Never hangs: if the
/// coordinator dies before listening, workers get port 0 and fail fast.
DistOutcome run_distributed(const ScenarioSpec& spec, CoordinatorOptions copt,
                            std::vector<WorkerOptions> wopts) {
  auto port_promise = std::make_shared<std::promise<std::uint16_t>>();
  std::shared_future<std::uint16_t> port = port_promise->get_future().share();
  copt.on_listen = [port_promise](std::uint16_t p) {
    port_promise->set_value(p);
  };
  copt.heartbeat_timeout = copt.heartbeat_timeout > 0 ? copt.heartbeat_timeout
                                                      : 15.0;

  DistOutcome out;
  out.workers.resize(wopts.size());
  out.worker_errors.resize(wopts.size());
  std::vector<std::thread> threads;
  threads.reserve(wopts.size());
  for (std::size_t i = 0; i < wopts.size(); ++i) {
    threads.emplace_back([&, i] {
      try {
        WorkerOptions o = wopts[i];
        o.host = "127.0.0.1";
        o.port = port.get();
        o.heartbeat_period = 0.2;
        out.workers[i] = run_worker(o);
      } catch (...) {
        out.worker_errors[i] = std::current_exception();
      }
    });
  }
  try {
    out.result = serve_campaign(spec, copt);
  } catch (...) {
    out.coordinator_error = std::current_exception();
  }
  try {
    port_promise->set_value(0);  // unblock workers if listen never happened
  } catch (const std::future_error&) {
  }
  for (std::thread& t : threads) t.join();
  return out;
}

TEST(DistLoopback, BitIdenticalToSingleProcess) {
  const ScenarioSpec spec = mixed_spec();
  const std::string reference = single_process_json(spec);

  CoordinatorOptions copt;
  copt.range_size = 3;
  std::vector<std::size_t> sunk;
  copt.case_sink = [&sunk](const CampaignReport&,
                           const campaign::CaseRecord& r) {
    sunk.push_back(r.index);
  };
  const DistOutcome out = run_distributed(
      spec, copt, {{.jobs = 2}, {.jobs = 2}});

  ASSERT_FALSE(out.coordinator_error);
  ASSERT_TRUE(out.result.has_value());
  EXPECT_TRUE(out.result->complete);
  EXPECT_EQ(report_json(out.result->report), reference);
  EXPECT_EQ(out.result->report.executed_cases,
            out.result->report.total_cases);

  // The case stream arrives strictly in case order, exactly once each.
  ASSERT_EQ(sunk.size(), out.result->report.total_cases);
  for (std::size_t i = 0; i < sunk.size(); ++i) EXPECT_EQ(sunk[i], i);

  for (const auto& err : out.worker_errors) EXPECT_FALSE(err);
  std::size_t cases = 0;
  for (const WorkerResult& w : out.workers) cases += w.cases_run;
  EXPECT_EQ(cases, out.result->report.total_cases);
}

TEST(DistLoopback, WorkerDeathRequeuesAndStaysBitIdentical) {
  const ScenarioSpec spec = mixed_spec();
  const std::string reference = single_process_json(spec);

  CoordinatorOptions copt;
  copt.range_size = 3;
  // One worker drops its connection on its second lease (death seen as
  // EOF with the lease outstanding); the survivor finishes the matrix.
  const DistOutcome out = run_distributed(
      spec, copt, {{.jobs = 1, .die_on_range = 2}, {.jobs = 2}});

  ASSERT_FALSE(out.coordinator_error);
  ASSERT_TRUE(out.result.has_value());
  EXPECT_TRUE(out.result->complete);
  EXPECT_GE(out.result->worker_deaths, 1u);
  EXPECT_GE(out.result->ranges_requeued, 1u);
  EXPECT_EQ(report_json(out.result->report), reference);
}

TEST(DistLoopback, PoisonedCaseFailsItsRangeOnceThenSucceeds) {
  const ScenarioSpec spec = mixed_spec();
  const std::string reference = single_process_json(spec);

  // The poisoned case throws on first execution only: the range FAILs,
  // is re-queued once, and the retry succeeds — exercising both the
  // per-case catch in the worker (process survives) and the
  // requeue-once budget in the coordinator.
  auto tripped = std::make_shared<std::atomic<bool>>(false);
  WorkerOptions wopt;
  wopt.jobs = 2;
  wopt.fail_case = [tripped](std::size_t index) {
    return index == 4 && !tripped->exchange(true);
  };

  CoordinatorOptions copt;
  copt.range_size = 3;
  const DistOutcome out = run_distributed(spec, copt, {wopt});

  ASSERT_FALSE(out.coordinator_error);
  ASSERT_TRUE(out.result.has_value());
  EXPECT_TRUE(out.result->complete);
  EXPECT_EQ(out.result->ranges_requeued, 1u);
  EXPECT_EQ(out.result->worker_deaths, 0u);  // the process kept serving
  EXPECT_EQ(report_json(out.result->report), reference);
}

TEST(DistLoopback, TwiceFailedRangeAbortsTheCampaign) {
  const ScenarioSpec spec = mixed_spec();

  WorkerOptions wopt;
  wopt.jobs = 2;
  wopt.fail_case = [](std::size_t index) { return index == 4; };

  CoordinatorOptions copt;
  copt.range_size = 3;
  const DistOutcome out = run_distributed(spec, copt, {wopt});

  ASSERT_TRUE(static_cast<bool>(out.coordinator_error));
  try {
    std::rethrow_exception(out.coordinator_error);
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("failed 2 time(s)"),
              std::string::npos)
        << e.what();
  }
  // The worker was told why, and was not simply cut off.
  ASSERT_FALSE(out.worker_errors[0]);
  EXPECT_TRUE(out.workers[0].aborted);
  EXPECT_NE(out.workers[0].abort_message.find("injected failure"),
            std::string::npos);
}

TEST(DistLoopback, CheckpointResumeSkipsCompletedWorkBitIdentically) {
  const ScenarioSpec spec = mixed_spec();
  const std::string reference = single_process_json(spec);
  const std::string path = ::testing::TempDir() + "dist_loopback_resume.ckpt";
  std::remove(path.c_str());

  // Phase 1: snapshot after every range, stop after the third snapshot
  // — a coordinator killed mid-campaign with a fresh checkpoint.
  CoordinatorOptions first;
  first.range_size = 3;
  first.checkpoint_path = path;
  first.snapshot_every = 1;
  first.exit_after_snapshots = 3;
  const DistOutcome interrupted =
      run_distributed(spec, first, {{.jobs = 2}});
  ASSERT_FALSE(interrupted.coordinator_error);
  ASSERT_TRUE(interrupted.result.has_value());
  EXPECT_FALSE(interrupted.result->complete);
  const std::size_t folded = interrupted.result->folded_cases;
  EXPECT_GT(folded, 0u);

  // Phase 2: a new coordinator resumes from the snapshot with a fresh
  // fleet. Completed ranges must not be re-executed, and the final
  // report must match the uninterrupted single-process run bitwise.
  CoordinatorOptions second;
  second.range_size = 3;
  second.checkpoint_path = path;
  second.snapshot_every = 1;
  second.resume = true;
  const DistOutcome resumed = run_distributed(spec, second, {{.jobs = 2}});
  ASSERT_FALSE(resumed.coordinator_error);
  ASSERT_TRUE(resumed.result.has_value());
  EXPECT_TRUE(resumed.result->complete);
  EXPECT_GE(resumed.result->resumed_cases, folded);
  EXPECT_GT(resumed.result->resumed_cases, 0u);
  EXPECT_EQ(resumed.result->executed_cases,
            resumed.result->report.total_cases - resumed.result->resumed_cases);
  // "Not re-executed" is observable at the worker: it ran exactly the
  // remainder of the matrix.
  EXPECT_EQ(resumed.workers[0].cases_run,
            resumed.result->report.total_cases - resumed.result->resumed_cases);
  EXPECT_EQ(report_json(resumed.result->report), reference);
  std::remove(path.c_str());
}

TEST(DistLoopback, ResumeRefusesAnEditedSpec) {
  const ScenarioSpec spec = mixed_spec();
  const std::string path = ::testing::TempDir() + "dist_loopback_refuse.ckpt";
  std::remove(path.c_str());

  CoordinatorOptions first;
  first.range_size = 3;
  first.checkpoint_path = path;
  first.snapshot_every = 1;
  first.exit_after_snapshots = 1;
  const DistOutcome interrupted =
      run_distributed(spec, first, {{.jobs = 2}});
  ASSERT_FALSE(interrupted.coordinator_error);

  // Same campaign, different seed: a different case matrix. Resuming
  // with the old checkpoint must be refused before any socket work.
  ScenarioSpec edited = spec;
  edited.seed = 8;
  CoordinatorOptions second;
  second.checkpoint_path = path;
  second.resume = true;
  try {
    (void)serve_campaign(edited, second);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("different campaign spec"),
              std::string::npos);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dls::dist
