// Checkpoint tests: capture/serialize/restore round trips must be
// bit-exact (resume depends on it), torn or mismatched files must be
// refused with a diagnostic.
#include "dist/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>

#include "campaign/runner.hpp"
#include "support/error.hpp"

namespace dls::dist {
namespace {

/// A two-group report skeleton with some folded data, plus a pending
/// tail — the coordinator's fold state mid-campaign.
campaign::CampaignReport sample_report() {
  campaign::CampaignReport report;
  report.groups.resize(2);
  report.groups[0].metrics.resize(3);
  report.groups[1].metrics.resize(2);
  std::mt19937_64 rng(99);
  std::normal_distribution<double> dist(1.0, 0.5);
  for (auto& group : report.groups)
    for (auto& metric : group.metrics)
      for (int i = 0; i < 40; ++i) {
        const double x = dist(rng);
        metric.acc.add(x);
        metric.p50.add(x);
        metric.p95.add(x);
      }
  return report;
}

std::map<std::size_t, std::vector<double>> sample_pending() {
  return {{57, {1.0, -0.0, 0.125}}, {60, {std::nan(""), 2.5, 1e-300}}};
}

void expect_same_aggregates(const campaign::CampaignReport& a,
                            const campaign::CampaignReport& b) {
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t g = 0; g < a.groups.size(); ++g) {
    ASSERT_EQ(a.groups[g].metrics.size(), b.groups[g].metrics.size());
    for (std::size_t m = 0; m < a.groups[g].metrics.size(); ++m) {
      const auto& ma = a.groups[g].metrics[m];
      const auto& mb = b.groups[g].metrics[m];
      EXPECT_EQ(ma.acc.count(), mb.acc.count());
      EXPECT_EQ(ma.acc.mean(), mb.acc.mean());
      EXPECT_EQ(ma.acc.stddev(), mb.acc.stddev());
      EXPECT_EQ(ma.acc.min(), mb.acc.min());
      EXPECT_EQ(ma.acc.max(), mb.acc.max());
      EXPECT_EQ(ma.p50.value(), mb.p50.value());
      EXPECT_EQ(ma.p95.value(), mb.p95.value());
    }
  }
}

TEST(Checkpoint, StreamRoundTripIsBitExact) {
  const campaign::CampaignReport report = sample_report();
  const Checkpoint cp =
      capture_checkpoint(report, 0xabcdef0123456789ULL, 120, 56,
                         sample_pending());

  std::stringstream stream;
  write_checkpoint(cp, stream);
  const Checkpoint back = read_checkpoint(stream);

  EXPECT_EQ(back.spec_fingerprint, cp.spec_fingerprint);
  EXPECT_EQ(back.total_cases, 120u);
  EXPECT_EQ(back.frontier, 56u);
  ASSERT_EQ(back.pending.size(), cp.pending.size());
  EXPECT_EQ(back.pending.at(57), cp.pending.at(57));
  EXPECT_TRUE(std::isnan(back.pending.at(60)[0]));
  EXPECT_EQ(back.pending.at(60)[2], 1e-300);

  // Restoring into a fresh skeleton reproduces every aggregate bitwise.
  campaign::CampaignReport skeleton;
  skeleton.groups.resize(2);
  skeleton.groups[0].metrics.resize(3);
  skeleton.groups[1].metrics.resize(2);
  restore_checkpoint(back, skeleton);
  expect_same_aggregates(skeleton, report);
}

TEST(Checkpoint, FileRoundTripAndFingerprintRefusal) {
  const std::string path = ::testing::TempDir() + "dist_checkpoint_test.ckpt";
  const campaign::CampaignReport report = sample_report();
  save_checkpoint_file(
      capture_checkpoint(report, 0x1111, 80, 80, {}), path);

  const Checkpoint back = load_checkpoint_file(path, 0x1111);
  EXPECT_EQ(back.frontier, 80u);

  // Wrong fingerprint: resuming an edited spec must be refused loudly.
  try {
    (void)load_checkpoint_file(path, 0x2222);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("different campaign spec"),
              std::string::npos);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, TornFileIsRefused) {
  const campaign::CampaignReport report = sample_report();
  std::stringstream stream;
  write_checkpoint(capture_checkpoint(report, 1, 80, 40, sample_pending()),
                   stream);
  std::string text = stream.str();
  // Drop the trailing "end\n" sentinel plus a bit: a torn write.
  text.resize(text.size() - 10);
  std::stringstream torn(text);
  EXPECT_THROW((void)read_checkpoint(torn), Error);
}

TEST(Checkpoint, ShapeMismatchIsRefused) {
  const campaign::CampaignReport report = sample_report();
  const Checkpoint cp = capture_checkpoint(report, 1, 80, 40, {});
  campaign::CampaignReport wrong;
  wrong.groups.resize(1);
  wrong.groups[0].metrics.resize(3);
  EXPECT_THROW(restore_checkpoint(cp, wrong), Error);
}

}  // namespace
}  // namespace dls::dist
